package flags

import "sync"

// notifierShards is the number of condition-variable shards used by the
// WaitNotify strategy. Sharding keeps writer-side wakeups cheap while
// avoiding one mutex per array element.
const notifierShards = 64

// notifier implements parked waiting for ready flags. Waiters for element e
// park on shard e % notifierShards; a writer setting element e broadcasts on
// that shard only.
type notifier struct {
	shards [notifierShards]notifierShard
}

type notifierShard struct {
	mu   sync.Mutex
	cond *sync.Cond
}

func newNotifier() *notifier {
	n := &notifier{}
	for i := range n.shards {
		n.shards[i].cond = sync.NewCond(&n.shards[i].mu)
	}
	return n
}

// wake signals all waiters parked on element e's shard. Spurious wakeups of
// waiters for other elements in the same shard are harmless: they re-check
// their predicate and park again.
func (n *notifier) wake(e int) {
	s := &n.shards[e%notifierShards]
	s.mu.Lock()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// wakeAll broadcasts on every shard. It is used by run abortion: a waiter
// parked for an element whose writing iteration will never execute must be
// released, and the aborting goroutine does not know which shard it sleeps
// on. Holding each shard mutex across the broadcast pairs with the waiter's
// predicate re-check under the same mutex, so a wakeup cannot be missed.
func (n *notifier) wakeAll() {
	for i := range n.shards {
		s := &n.shards[i]
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	}
}

// wait parks until done() reports true and returns the number of wakeups that
// were needed.
func (n *notifier) wait(e int, done func() bool) int {
	s := &n.shards[e%notifierShards]
	wakeups := 0
	s.mu.Lock()
	for !done() {
		wakeups++
		s.cond.Wait()
	}
	s.mu.Unlock()
	return wakeups
}
