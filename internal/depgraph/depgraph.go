// Package depgraph builds and analyses the inter-iteration dependency graph
// of a loop whose subscripts are only known at run time. It is the analysis
// substrate shared by the doconsider reordering, the machine simulator and
// the experiment harness.
//
// A loop iteration i writes a set of data elements and reads a set of data
// elements. Because the preprocessed doacross renames all writes into a
// separate array (ynew), only flow (true) dependencies constrain execution:
// iteration i depends on iteration j when j < i and j writes an element that
// i reads. Anti- and output dependencies are removed by the renaming, exactly
// as in Section 2.1 of the paper.
package depgraph

import (
	"fmt"
	"sort"
	"strings"
)

// Access describes the data elements touched by each iteration of a loop.
type Access struct {
	// N is the number of iterations.
	N int
	// Writes returns the data elements written by iteration i. The
	// preprocessed doacross assumes no output dependencies, i.e. no element
	// is written by two different iterations.
	Writes func(i int) []int
	// Reads returns the data elements read by iteration i.
	Reads func(i int) []int
}

// Graph is the true-dependency DAG of a loop: Preds[i] lists the iterations
// that iteration i must wait for (each writes an element i reads and precedes
// i in the original order), and Succs is the reverse adjacency.
type Graph struct {
	N     int
	Preds [][]int32
	Succs [][]int32
	// Edges is the total number of dependency edges.
	Edges int
}

// Build constructs the true-dependency graph of the access pattern. Duplicate
// edges (an iteration reading several elements produced by the same earlier
// iteration) are collapsed.
func Build(a Access) *Graph {
	writer := make(map[int]int32)
	maxElem := -1
	for i := 0; i < a.N; i++ {
		for _, e := range a.Writes(i) {
			if e > maxElem {
				maxElem = e
			}
			writer[e] = int32(i)
		}
	}
	g := &Graph{
		N:     a.N,
		Preds: make([][]int32, a.N),
		Succs: make([][]int32, a.N),
	}
	for i := 0; i < a.N; i++ {
		var preds []int32
		for _, e := range a.Reads(i) {
			j, ok := writer[e]
			if !ok || int(j) >= i {
				// Not written, self dependence, or anti-dependence
				// (removed by renaming).
				continue
			}
			preds = append(preds, j)
		}
		preds = dedupSorted(preds)
		g.Preds[i] = preds
		g.Edges += len(preds)
		for _, j := range preds {
			g.Succs[j] = append(g.Succs[j], int32(i))
		}
	}
	return g
}

// FromPreds reconstructs a graph from per-iteration predecessor lists (the
// form an exported plan document records): successor lists and the edge count
// are derived, the predecessor slices are retained as given. Every
// predecessor must lie in [0, i) for iteration i.
func FromPreds(preds [][]int32) *Graph {
	g := &Graph{
		N:     len(preds),
		Preds: preds,
		Succs: make([][]int32, len(preds)),
	}
	for i, ps := range preds {
		g.Edges += len(ps)
		for _, j := range ps {
			g.Succs[j] = append(g.Succs[j], int32(i))
		}
	}
	return g
}

// BuildFromWriterIndex constructs the graph for the common single-write case
// where iteration i writes exactly element write[i] and reads the elements
// reads(i). It avoids the closure allocation of Build for large loops.
func BuildFromWriterIndex(n int, write []int, reads func(i int) []int) *Graph {
	return Build(Access{
		N:      n,
		Writes: func(i int) []int { return write[i : i+1] },
		Reads:  reads,
	})
}

// BuildParallel constructs the same graph as Build but distributes the two
// expensive passes — filling the dense writer index and computing each
// iteration's predecessor list — with the supplied parallel-for runner, so the
// inspector cost of a wavefront executor shrinks with the number of workers.
//
// dataLen bounds the data elements the access pattern may touch (elements are
// in [0, dataLen)); it replaces Build's writer map with a dense array, which
// is what makes the fill parallelizable. parallelFor must run body(i) for
// every i in [0, n), possibly concurrently, and return only once all calls
// have finished — sched.Pool.ParallelFor satisfies the contract. A nil
// parallelFor runs both passes sequentially.
//
// The access pattern must be free of output dependencies (no element written
// by two different iterations, the preprocessed doacross precondition);
// otherwise the concurrent writer-index fill would race.
func BuildParallel(a Access, dataLen int, parallelFor func(n int, body func(i int))) *Graph {
	if parallelFor == nil {
		parallelFor = func(n int, body func(i int)) {
			for i := 0; i < n; i++ {
				body(i)
			}
		}
	}
	writer := make([]int32, dataLen)
	parallelFor(dataLen, func(e int) { writer[e] = -1 })
	parallelFor(a.N, func(i int) {
		for _, e := range a.Writes(i) {
			writer[e] = int32(i)
		}
	})
	return BuildParallelFromWriterIndex(a.N, writer, a.Reads, parallelFor)
}

// BuildParallelFromWriterIndex is BuildParallel for callers that already hold
// the dense writer index (writer[e] = the iteration writing element e, -1 for
// unwritten elements) — the wavefront inspector fills that index anyway for
// its execution-time dependency checks and shares it here instead of building
// it twice. parallelFor follows the BuildParallel contract; nil runs
// sequentially.
func BuildParallelFromWriterIndex(n int, writer []int32, reads func(i int) []int, parallelFor func(n int, body func(i int))) *Graph {
	if parallelFor == nil {
		parallelFor = func(n int, body func(i int)) {
			for i := 0; i < n; i++ {
				body(i)
			}
		}
	}
	g := &Graph{
		N:     n,
		Preds: make([][]int32, n),
		Succs: make([][]int32, n),
	}
	parallelFor(n, func(i int) {
		var preds []int32
		for _, e := range reads(i) {
			if e < 0 || e >= len(writer) {
				continue
			}
			j := writer[e]
			if j < 0 || int(j) >= i {
				// Not written, self dependence, or anti-dependence
				// (removed by renaming).
				continue
			}
			preds = append(preds, j)
		}
		g.Preds[i] = dedupSorted(preds)
	})
	// The reverse adjacency appends to shared per-node slices, so it stays
	// sequential; it is O(edges), cheap next to the predecessor scans above.
	for i := 0; i < n; i++ {
		g.Edges += len(g.Preds[i])
		for _, j := range g.Preds[i] {
			g.Succs[j] = append(g.Succs[j], int32(i))
		}
	}
	return g
}

func dedupSorted(xs []int32) []int32 {
	if len(xs) < 2 {
		return xs
	}
	sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// Levels computes the wavefront (level-set) decomposition of the graph:
// level[i] = 0 when iteration i has no predecessors, otherwise
// 1 + max(level of predecessors). Iterations within the same level can run
// concurrently. The second result groups iterations by level, each group in
// ascending iteration order.
//
// Because every edge points from a lower iteration index to a higher one, a
// single forward sweep suffices; no explicit topological sort is needed.
func (g *Graph) Levels() (level []int, byLevel [][]int) {
	level = make([]int, g.N)
	maxLevel := 0
	for i := 0; i < g.N; i++ {
		l := 0
		for _, p := range g.Preds[i] {
			if lp := level[p] + 1; lp > l {
				l = lp
			}
		}
		level[i] = l
		if l > maxLevel {
			maxLevel = l
		}
	}
	if g.N == 0 {
		return level, nil
	}
	byLevel = make([][]int, maxLevel+1)
	for i, l := range level {
		byLevel[l] = append(byLevel[l], i)
	}
	return level, byLevel
}

// LevelSet is a compact wavefront decomposition in CSR form: Level[i] is the
// level of iteration i, and level l's members are Members[Off[l]:Off[l+1]],
// in ascending iteration order. It is the allocation-free counterpart of the
// byLevel slices returned by Levels, for callers (the wavefront inspector)
// that decompose a graph on every cold inspect and want to reuse buffers.
type LevelSet struct {
	Level   []int32
	Members []int32
	Off     []int32
}

// Count returns the number of levels.
func (ls *LevelSet) Count() int { return len(ls.Off) - 1 }

// LevelMembers returns the iterations of level l, in ascending order.
func (ls *LevelSet) LevelMembers(l int) []int32 { return ls.Members[ls.Off[l]:ls.Off[l+1]] }

// MaxWidth returns the size of the widest level.
func (ls *LevelSet) MaxWidth() int {
	max := 0
	for l := 0; l < ls.Count(); l++ {
		if w := int(ls.Off[l+1] - ls.Off[l]); w > max {
			max = w
		}
	}
	return max
}

// grow returns buf resized to length n, reusing its backing array when
// possible.
func grow(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}

// LevelsInto computes the same wavefront decomposition as Levels into the
// reusable buffers of ls, allocating only when the buffers are too small (or
// ls is nil, in which case a fresh LevelSet is allocated). It returns ls.
//
// The decomposition is a forward sweep followed by a counting sort, both
// O(N + edges) with no per-level allocations — the property the wavefront
// inspector needs when it cold-inspects loop after loop on one runtime.
func (g *Graph) LevelsInto(ls *LevelSet) *LevelSet {
	if ls == nil {
		ls = &LevelSet{}
	}
	ls.Level = grow(ls.Level, g.N)
	ls.Members = grow(ls.Members, g.N)
	levels := int32(0)
	for i := 0; i < g.N; i++ {
		l := int32(0)
		for _, p := range g.Preds[i] {
			if lp := ls.Level[p] + 1; lp > l {
				l = lp
			}
		}
		ls.Level[i] = l
		if l+1 > levels {
			levels = l + 1
		}
	}
	ls.Off = grow(ls.Off, int(levels)+1)
	for l := range ls.Off {
		ls.Off[l] = 0
	}
	for i := 0; i < g.N; i++ {
		ls.Off[ls.Level[i]+1]++
	}
	for l := 0; l < int(levels); l++ {
		ls.Off[l+1] += ls.Off[l]
	}
	// Scatter, advancing Off[l] as the cursor of level l; afterwards Off[l]
	// holds the END of level l, so shifting the array right by one restores
	// the start offsets. Iterating i in ascending order keeps each level's
	// members sorted.
	for i := 0; i < g.N; i++ {
		l := ls.Level[i]
		ls.Members[ls.Off[l]] = int32(i)
		ls.Off[l]++
	}
	for l := int(levels); l >= 1; l-- {
		ls.Off[l] = ls.Off[l-1]
	}
	ls.Off[0] = 0
	return ls
}

// StallWeight estimates the pipeline stalls a busy-wait doacross on the
// given worker count would suffer, from the dependence-distance histogram:
// Σ over edges of max(0, (P - d)/P), where d is the edge's distance
// (consumer iteration minus producer). A distance-1 edge stalls its
// consumer's worker almost a full iteration (the producer started in the
// same schedule round); an edge at distance ≥ P is fully absorbed by the
// pipelining. It is the statistic the Auto executor selection prices and
// the quantity the doconsider reordering exists to shrink.
func (g *Graph) StallWeight(workers int) float64 {
	if workers <= 1 {
		return 0
	}
	w := 0.0
	for i := 0; i < g.N; i++ {
		for _, p := range g.Preds[i] {
			if d := i - int(p); d < workers {
				w += float64(workers-d) / float64(workers)
			}
		}
	}
	return w
}

// CriticalPath returns the length of the longest weighted chain through the
// graph, where cost(i) is the execution cost of iteration i. With a nil cost
// function every iteration costs 1, so the result is the number of iterations
// on the longest dependency chain. The path itself (iteration indices, in
// execution order) is returned as well.
func (g *Graph) CriticalPath(cost func(i int) float64) (length float64, path []int) {
	if g.N == 0 {
		return 0, nil
	}
	unit := func(int) float64 { return 1 }
	if cost == nil {
		cost = unit
	}
	dist := make([]float64, g.N)
	from := make([]int, g.N)
	best := 0
	for i := 0; i < g.N; i++ {
		d := 0.0
		from[i] = -1
		for _, p := range g.Preds[i] {
			if dist[p] > d {
				d = dist[p]
				from[i] = int(p)
			}
		}
		dist[i] = d + cost(i)
		if dist[i] > dist[best] {
			best = i
		}
	}
	for i := best; i != -1; i = from[i] {
		path = append(path, i)
	}
	// Reverse into execution order.
	for l, r := 0, len(path)-1; l < r; l, r = l+1, r-1 {
		path[l], path[r] = path[r], path[l]
	}
	return dist[best], path
}

// Stats summarizes the parallel structure of a dependency graph.
type Stats struct {
	Iterations     int
	Edges          int
	Levels         int
	MaxLevelWidth  int
	MeanLevelWidth float64
	// CriticalPathLen is the unweighted critical path (iterations on the
	// longest chain).
	CriticalPathLen int
	// MaxSpeedup is Iterations / CriticalPathLen: the speedup an unbounded
	// number of processors could achieve with unit iteration costs and zero
	// overhead.
	MaxSpeedup float64
	// Independent reports whether the loop has no cross-iteration true
	// dependencies at all (a doall loop).
	Independent bool
}

// Analyze computes summary statistics for the graph.
func (g *Graph) Analyze() Stats {
	_, byLevel := g.Levels()
	st := Stats{Iterations: g.N, Edges: g.Edges, Levels: len(byLevel)}
	for _, lvl := range byLevel {
		if len(lvl) > st.MaxLevelWidth {
			st.MaxLevelWidth = len(lvl)
		}
	}
	if len(byLevel) > 0 {
		st.MeanLevelWidth = float64(g.N) / float64(len(byLevel))
	}
	cp, _ := g.CriticalPath(nil)
	st.CriticalPathLen = int(cp)
	if cp > 0 {
		st.MaxSpeedup = float64(g.N) / cp
	}
	st.Independent = g.Edges == 0
	return st
}

// String renders the statistics in a compact single-line form.
func (s Stats) String() string {
	return fmt.Sprintf("iters=%d edges=%d levels=%d maxWidth=%d critPath=%d maxSpeedup=%.2f",
		s.Iterations, s.Edges, s.Levels, s.MaxLevelWidth, s.CriticalPathLen, s.MaxSpeedup)
}

// IsTopologicalOrder reports whether the permutation order (order[k] = the
// iteration executed at position k) respects every dependency edge, i.e.
// every iteration appears after all of its predecessors.
func (g *Graph) IsTopologicalOrder(order []int) bool {
	if len(order) != g.N {
		return false
	}
	pos := make([]int, g.N)
	seen := make([]bool, g.N)
	for k, it := range order {
		if it < 0 || it >= g.N || seen[it] {
			return false
		}
		seen[it] = true
		pos[it] = k
	}
	for i := 0; i < g.N; i++ {
		for _, p := range g.Preds[i] {
			if pos[p] >= pos[i] {
				return false
			}
		}
	}
	return true
}

// DOT renders the dependency graph in Graphviz DOT format, with iterations
// grouped by level. Intended for small graphs (debugging and documentation).
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %q {\n  rankdir=TB;\n  node [shape=circle];\n", name)
	level, byLevel := g.Levels()
	for l, members := range byLevel {
		fmt.Fprintf(&b, "  { rank=same;")
		for _, m := range members {
			fmt.Fprintf(&b, " i%d;", m)
		}
		fmt.Fprintf(&b, " } // level %d\n", l)
	}
	_ = level
	for i := 0; i < g.N; i++ {
		for _, p := range g.Preds[i] {
			fmt.Fprintf(&b, "  i%d -> i%d;\n", p, i)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// ParallelismProfile returns, for each level, the number of iterations in
// that level — the "width" of each wavefront. It is the profile a level
// scheduled (doall-per-wavefront) execution would exploit.
func (g *Graph) ParallelismProfile() []int {
	_, byLevel := g.Levels()
	widths := make([]int, len(byLevel))
	for l, members := range byLevel {
		widths[l] = len(members)
	}
	return widths
}
