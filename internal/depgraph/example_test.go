package depgraph_test

import (
	"fmt"

	"doacross/internal/depgraph"
)

// ExampleBuild constructs the true-dependency graph of a loop whose
// iteration i writes element i and reads element i-2: only flow dependencies
// appear, anti-dependencies are discarded because the doacross renames its
// writes.
func ExampleBuild() {
	g := depgraph.Build(depgraph.Access{
		N:      6,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			if i < 2 {
				return nil
			}
			return []int{i - 2}
		},
	})
	fmt.Println("edges:", g.Edges)
	fmt.Println("preds of 5:", g.Preds[5])

	level, _ := g.Levels()
	fmt.Println("levels:", level)

	length, path := g.CriticalPath(nil)
	fmt.Println("critical path:", length, path)
	// Output:
	// edges: 4
	// preds of 5: [3]
	// levels: [0 0 1 1 2 2]
	// critical path: 3 [0 2 4]
}

// ExampleGraph_Analyze summarizes the parallel structure of a wavefront
// (grid) dependency pattern — the structure of the paper's triangular solves.
func ExampleGraph_Analyze() {
	const nx, ny = 3, 3
	g := depgraph.Build(depgraph.Access{
		N:      nx * ny,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(it int) []int {
			i, j := it/ny, it%ny
			var r []int
			if i > 0 {
				r = append(r, (i-1)*ny+j)
			}
			if j > 0 {
				r = append(r, it-1)
			}
			return r
		},
	})
	st := g.Analyze()
	fmt.Println(st)
	// Output:
	// iters=9 edges=12 levels=5 maxWidth=3 critPath=5 maxSpeedup=1.80
}
