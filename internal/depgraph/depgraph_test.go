package depgraph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// chainAccess builds a loop where iteration i writes element i and reads
// element i-1: a pure sequential chain.
func chainAccess(n int) Access {
	return Access{
		N:      n,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			if i == 0 {
				return nil
			}
			return []int{i - 1}
		},
	}
}

// independentAccess builds a loop with no cross-iteration dependencies.
func independentAccess(n int) Access {
	return Access{
		N:      n,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return []int{i + n} },
	}
}

func TestBuildChain(t *testing.T) {
	g := Build(chainAccess(5))
	if g.N != 5 || g.Edges != 4 {
		t.Fatalf("chain graph: N=%d edges=%d, want 5,4", g.N, g.Edges)
	}
	for i := 1; i < 5; i++ {
		if len(g.Preds[i]) != 1 || g.Preds[i][0] != int32(i-1) {
			t.Fatalf("iteration %d preds = %v, want [%d]", i, g.Preds[i], i-1)
		}
	}
	if len(g.Preds[0]) != 0 {
		t.Fatal("iteration 0 should have no predecessors")
	}
	if len(g.Succs[0]) != 1 || g.Succs[0][0] != 1 {
		t.Fatalf("iteration 0 succs = %v, want [1]", g.Succs[0])
	}
}

func TestBuildIndependent(t *testing.T) {
	g := Build(independentAccess(10))
	if g.Edges != 0 {
		t.Fatalf("independent loop produced %d edges", g.Edges)
	}
	st := g.Analyze()
	if !st.Independent {
		t.Error("Analyze should report independent")
	}
	if st.Levels != 1 || st.MaxLevelWidth != 10 {
		t.Errorf("independent loop: levels=%d width=%d, want 1,10", st.Levels, st.MaxLevelWidth)
	}
}

func TestBuildIgnoresAntiAndSelfDependencies(t *testing.T) {
	// Iteration i writes element i and reads element i+1 (anti-dependence)
	// and element i (self). Renaming removes both.
	a := Access{
		N:      6,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return []int{i + 1, i} },
	}
	g := Build(a)
	if g.Edges != 0 {
		t.Fatalf("anti/self dependencies produced %d true edges", g.Edges)
	}
}

func TestBuildDeduplicatesEdges(t *testing.T) {
	// Iteration 2 reads two different elements both written by iteration 0.
	a := Access{
		N: 3,
		Writes: func(i int) []int {
			if i == 0 {
				return []int{10, 11}
			}
			return []int{i}
		},
		Reads: func(i int) []int {
			if i == 2 {
				return []int{10, 11}
			}
			return nil
		},
	}
	g := Build(a)
	if len(g.Preds[2]) != 1 || g.Preds[2][0] != 0 {
		t.Fatalf("preds[2] = %v, want single edge to 0", g.Preds[2])
	}
}

func TestBuildFromWriterIndex(t *testing.T) {
	write := []int{0, 1, 2, 3}
	g := BuildFromWriterIndex(4, write, func(i int) []int {
		if i == 3 {
			return []int{0, 2}
		}
		return nil
	})
	if len(g.Preds[3]) != 2 {
		t.Fatalf("preds[3] = %v, want two predecessors", g.Preds[3])
	}
}

func TestLevelsChain(t *testing.T) {
	g := Build(chainAccess(6))
	level, byLevel := g.Levels()
	for i := 0; i < 6; i++ {
		if level[i] != i {
			t.Fatalf("level[%d] = %d, want %d", i, level[i], i)
		}
	}
	if len(byLevel) != 6 {
		t.Fatalf("byLevel has %d levels, want 6", len(byLevel))
	}
}

func TestLevelsEmptyGraph(t *testing.T) {
	g := Build(Access{N: 0, Writes: func(int) []int { return nil }, Reads: func(int) []int { return nil }})
	level, byLevel := g.Levels()
	if len(level) != 0 || byLevel != nil {
		t.Error("empty graph should have empty levels")
	}
	if l, p := g.CriticalPath(nil); l != 0 || p != nil {
		t.Error("empty graph critical path should be 0")
	}
}

func TestCriticalPathChainAndWeights(t *testing.T) {
	g := Build(chainAccess(5))
	l, path := g.CriticalPath(nil)
	if l != 5 {
		t.Fatalf("unweighted critical path = %v, want 5", l)
	}
	if len(path) != 5 || path[0] != 0 || path[4] != 4 {
		t.Fatalf("critical path = %v, want 0..4", path)
	}
	// Weighted: iteration 2 is very expensive; path unchanged but length is.
	l, _ = g.CriticalPath(func(i int) float64 {
		if i == 2 {
			return 10
		}
		return 1
	})
	if l != 14 {
		t.Fatalf("weighted critical path = %v, want 14", l)
	}
}

func TestCriticalPathDiamond(t *testing.T) {
	// 0 -> {1,2} -> 3 (1 and 2 independent of each other).
	a := Access{
		N:      4,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			switch i {
			case 1, 2:
				return []int{0}
			case 3:
				return []int{1, 2}
			}
			return nil
		},
	}
	g := Build(a)
	l, path := g.CriticalPath(nil)
	if l != 3 {
		t.Fatalf("diamond critical path = %v, want 3", l)
	}
	if len(path) != 3 || path[0] != 0 || path[2] != 3 {
		t.Fatalf("diamond path = %v", path)
	}
	st := g.Analyze()
	if st.Levels != 3 || st.MaxLevelWidth != 2 {
		t.Errorf("diamond stats: %+v", st)
	}
	if st.MaxSpeedup < 1.3 || st.MaxSpeedup > 1.34 {
		t.Errorf("diamond max speedup = %v, want 4/3", st.MaxSpeedup)
	}
}

func TestIsTopologicalOrder(t *testing.T) {
	g := Build(chainAccess(4))
	if !g.IsTopologicalOrder([]int{0, 1, 2, 3}) {
		t.Error("natural order of a chain should be topological")
	}
	if g.IsTopologicalOrder([]int{1, 0, 2, 3}) {
		t.Error("swapped chain order should not be topological")
	}
	if g.IsTopologicalOrder([]int{0, 1, 2}) {
		t.Error("short order should be rejected")
	}
	if g.IsTopologicalOrder([]int{0, 1, 2, 2}) {
		t.Error("duplicate order should be rejected")
	}
	if g.IsTopologicalOrder([]int{0, 1, 2, 7}) {
		t.Error("out-of-range order should be rejected")
	}
}

func TestLevelOrderIsAlwaysTopological(t *testing.T) {
	// Property: for random single-writer loops, concatenating the level
	// groups gives a valid topological order.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(40)
		reads := make([][]int, n)
		for i := 1; i < n; i++ {
			for k := 0; k < rng.Intn(3); k++ {
				reads[i] = append(reads[i], rng.Intn(n))
			}
		}
		write := make([]int, n)
		for i := range write {
			write[i] = i
		}
		g := BuildFromWriterIndex(n, write, func(i int) []int { return reads[i] })
		_, byLevel := g.Levels()
		var order []int
		for _, lvl := range byLevel {
			order = append(order, lvl...)
		}
		return g.IsTopologicalOrder(order)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCriticalPathAtMostLevels(t *testing.T) {
	// Property: the unweighted critical path equals the number of levels.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(30)
		reads := make([][]int, n)
		for i := 1; i < n; i++ {
			if rng.Intn(2) == 0 {
				reads[i] = append(reads[i], rng.Intn(i))
			}
		}
		write := make([]int, n)
		for i := range write {
			write[i] = i
		}
		g := BuildFromWriterIndex(n, write, func(i int) []int { return reads[i] })
		cp, _ := g.CriticalPath(nil)
		_, byLevel := g.Levels()
		return int(cp) == len(byLevel)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestParallelismProfile(t *testing.T) {
	g := Build(chainAccess(3))
	prof := g.ParallelismProfile()
	if len(prof) != 3 || prof[0] != 1 || prof[1] != 1 || prof[2] != 1 {
		t.Errorf("chain profile = %v", prof)
	}
	g = Build(independentAccess(7))
	prof = g.ParallelismProfile()
	if len(prof) != 1 || prof[0] != 7 {
		t.Errorf("independent profile = %v", prof)
	}
}

func TestDOTOutput(t *testing.T) {
	g := Build(chainAccess(3))
	dot := g.DOT("chain")
	for _, want := range []string{"digraph \"chain\"", "i0 -> i1", "i1 -> i2", "rank=same"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}

func TestStatsString(t *testing.T) {
	st := Build(chainAccess(4)).Analyze()
	s := st.String()
	if !strings.Contains(s, "iters=4") || !strings.Contains(s, "critPath=4") {
		t.Errorf("Stats.String() = %q", s)
	}
}

// randomAccess builds a random output-dependency-free access pattern:
// iteration i writes element perm[i] and reads a few random elements, so the
// graph mixes true dependencies, anti-dependencies and untouched reads.
func randomAccess(rng *rand.Rand, n int) (Access, int) {
	dataLen := 2 * n
	perm := rng.Perm(dataLen)[:n]
	reads := make([][]int, n)
	for i := range reads {
		k := rng.Intn(4)
		for j := 0; j < k; j++ {
			reads[i] = append(reads[i], rng.Intn(dataLen))
		}
	}
	return Access{
		N:      n,
		Writes: func(i int) []int { return perm[i : i+1] },
		Reads:  func(i int) []int { return reads[i] },
	}, dataLen
}

// goParallelFor is a goroutine-per-shard parallel runner used to exercise
// BuildParallel's concurrency under the race detector.
func goParallelFor(n int, body func(i int)) {
	const shards = 4
	done := make(chan struct{}, shards)
	for s := 0; s < shards; s++ {
		go func(s int) {
			for i := s; i < n; i += shards {
				body(i)
			}
			done <- struct{}{}
		}(s)
	}
	for s := 0; s < shards; s++ {
		<-done
	}
}

func graphsEqual(a, b *Graph) bool {
	if a.N != b.N || a.Edges != b.Edges {
		return false
	}
	for i := 0; i < a.N; i++ {
		if len(a.Preds[i]) != len(b.Preds[i]) {
			return false
		}
		for k := range a.Preds[i] {
			if a.Preds[i][k] != b.Preds[i][k] {
				return false
			}
		}
		if len(a.Succs[i]) != len(b.Succs[i]) {
			return false
		}
		for k := range a.Succs[i] {
			if a.Succs[i][k] != b.Succs[i][k] {
				return false
			}
		}
	}
	return true
}

// TestBuildParallelMatchesBuild checks that the pool-parallel construction
// produces exactly the graph of the sequential Build, for random access
// patterns, both with a nil runner and a genuinely concurrent one.
func TestBuildParallelMatchesBuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, dataLen := randomAccess(rng, 20+rng.Intn(200))
		want := Build(a)
		if !graphsEqual(want, BuildParallel(a, dataLen, nil)) {
			return false
		}
		return graphsEqual(want, BuildParallel(a, dataLen, goParallelFor))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestLevelsIntoMatchesLevels checks the CSR decomposition against the
// slice-of-slices one on random graphs, including buffer reuse across graphs
// of different sizes.
func TestLevelsIntoMatchesLevels(t *testing.T) {
	ls := &LevelSet{} // reused across all iterations to exercise buffer reuse
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, _ := randomAccess(rng, 10+rng.Intn(300))
		g := Build(a)
		level, byLevel := g.Levels()
		g.LevelsInto(ls)
		if ls.Count() != len(byLevel) {
			return false
		}
		for i := 0; i < g.N; i++ {
			if int(ls.Level[i]) != level[i] {
				return false
			}
		}
		for l := range byLevel {
			members := ls.LevelMembers(l)
			if len(members) != len(byLevel[l]) {
				return false
			}
			for k := range members {
				if int(members[k]) != byLevel[l][k] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLevelsIntoEmptyAndNil(t *testing.T) {
	g := Build(Access{N: 0, Writes: func(int) []int { return nil }, Reads: func(int) []int { return nil }})
	ls := g.LevelsInto(nil)
	if ls.Count() != 0 {
		t.Fatalf("empty graph has %d levels, want 0", ls.Count())
	}
	if ls.MaxWidth() != 0 {
		t.Fatalf("empty graph max width = %d, want 0", ls.MaxWidth())
	}
}

func TestLevelSetMaxWidth(t *testing.T) {
	// Diamond: 0 -> {1,2} -> 3. Levels: {0}, {1,2}, {3}; max width 2.
	g := BuildFromWriterIndex(4, []int{0, 1, 2, 3}, func(i int) []int {
		switch i {
		case 1, 2:
			return []int{0}
		case 3:
			return []int{1, 2}
		}
		return nil
	})
	ls := g.LevelsInto(nil)
	if ls.Count() != 3 || ls.MaxWidth() != 2 {
		t.Fatalf("diamond: levels=%d maxWidth=%d, want 3, 2", ls.Count(), ls.MaxWidth())
	}
}

// BenchmarkLevels and BenchmarkLevelsInto compare the allocating and the
// buffer-reusing level decompositions; the wavefront inspector calls this on
// every cold inspect, so the Into variant must be allocation-free after the
// first call.
func BenchmarkLevels(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a, _ := randomAccess(rng, 20000)
	g := Build(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Levels()
	}
}

func BenchmarkLevelsInto(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a, _ := randomAccess(rng, 20000)
	g := Build(a)
	ls := g.LevelsInto(nil) // warm the buffers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.LevelsInto(ls)
	}
}

func BenchmarkBuildParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a, dataLen := randomAccess(rng, 20000)
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BuildParallel(a, dataLen, nil)
		}
	})
	b.Run("goroutines", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BuildParallel(a, dataLen, goParallelFor)
		}
	})
}
