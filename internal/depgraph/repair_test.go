package depgraph

import (
	"math/rand"
	"reflect"
	"testing"
)

// chainGraph builds the N-iteration chain 0 → 1 → … → N-1.
func chainGraph(n int) *Graph {
	return Build(Access{
		N:      n,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			if i == 0 {
				return nil
			}
			return []int{i - 1}
		},
	})
}

func TestApplyEditsUpdatesAdjacency(t *testing.T) {
	g := chainGraph(5)
	if g.Edges != 4 {
		t.Fatalf("chain edges = %d, want 4", g.Edges)
	}
	// Cut 3's dependence on 2, hang it off 0 and 1 instead.
	if err := g.ApplyEdits([]Edit{{Iter: 3, Preds: []int32{1, 0, 1}}}); err != nil {
		t.Fatalf("ApplyEdits: %v", err)
	}
	if want := []int32{0, 1}; !reflect.DeepEqual(g.Preds[3], want) {
		t.Fatalf("Preds[3] = %v, want %v", g.Preds[3], want)
	}
	if want := []int32{3}; !reflect.DeepEqual(g.Succs[0], append([]int32{1}, want...)) {
		t.Fatalf("Succs[0] = %v, want [1 3]", g.Succs[0])
	}
	if want := []int32{2, 3}; !reflect.DeepEqual(g.Succs[1], want) {
		t.Fatalf("Succs[1] = %v, want %v", g.Succs[1], want)
	}
	if len(g.Succs[2]) != 0 {
		t.Fatalf("Succs[2] = %v, want empty", g.Succs[2])
	}
	if g.Edges != 5 {
		t.Fatalf("edges = %d, want 5", g.Edges)
	}
}

func TestApplyEditsRejectsBadEditsAtomically(t *testing.T) {
	g := chainGraph(4)
	before := snapshotGraph(g)
	cases := [][]Edit{
		{{Iter: -1}},
		{{Iter: 4}},
		{{Iter: 2, Preds: []int32{2}}},            // self dependence
		{{Iter: 2, Preds: []int32{3}}},            // backward edge
		{{Iter: 2, Preds: []int32{-1}}},           // negative predecessor
		{{Iter: 1, Preds: []int32{0}}, {Iter: 9}}, // valid then invalid
	}
	for k, edits := range cases {
		if err := g.ApplyEdits(edits); err == nil {
			t.Fatalf("case %d: ApplyEdits accepted invalid edits %v", k, edits)
		}
		if got := snapshotGraph(g); !reflect.DeepEqual(got, before) {
			t.Fatalf("case %d: graph mutated by rejected edits", k)
		}
	}
}

type graphSnapshot struct {
	Preds, Succs [][]int32
	Edges        int
}

func snapshotGraph(g *Graph) graphSnapshot {
	cp := func(xs [][]int32) [][]int32 {
		out := make([][]int32, len(xs))
		for i, x := range xs {
			out[i] = append([]int32(nil), x...)
		}
		return out
	}
	return graphSnapshot{Preds: cp(g.Preds), Succs: cp(g.Succs), Edges: g.Edges}
}

func TestRepairLevelsMatchesColdOnChain(t *testing.T) {
	g := chainGraph(6)
	ls := g.LevelsInto(nil)
	// Cut the chain in the middle: 3 becomes a root, levels 3.. collapse.
	if err := g.ApplyEdits([]Edit{{Iter: 3, Preds: nil}}); err != nil {
		t.Fatalf("ApplyEdits: %v", err)
	}
	res := g.RepairLevelsInto(ls, []int32{3}, 0)
	if !res.Ok {
		t.Fatalf("repair hit the cone bound unexpectedly: %+v", res)
	}
	checkLevelSetMatchesCold(t, g, ls)
	if res.FromLevel != 0 {
		t.Fatalf("FromLevel = %d, want 0 (iteration 3 moved from level 3 to 0)", res.FromLevel)
	}
	if res.Cone != 3 || res.Changed != 3 {
		t.Fatalf("cone = %d changed = %d, want 3 and 3", res.Cone, res.Changed)
	}
}

func TestRepairLevelsNoChangeIsCheap(t *testing.T) {
	g := chainGraph(5)
	ls := g.LevelsInto(nil)
	// Re-applying the same predecessors changes no level.
	if err := g.ApplyEdits([]Edit{{Iter: 2, Preds: []int32{1}}}); err != nil {
		t.Fatalf("ApplyEdits: %v", err)
	}
	res := g.RepairLevelsInto(ls, []int32{2}, 0)
	if !res.Ok || res.Changed != 0 || res.Cone != 1 {
		t.Fatalf("unexpected result %+v, want Ok with cone 1 and no change", res)
	}
	if res.FromLevel != ls.Count() {
		t.Fatalf("FromLevel = %d, want level count %d on a no-op repair", res.FromLevel, ls.Count())
	}
	checkLevelSetMatchesCold(t, g, ls)
}

func TestRepairLevelsConeBudgetRollsBack(t *testing.T) {
	g := chainGraph(64)
	ls := g.LevelsInto(nil)
	want := append([]int32(nil), ls.Level[:g.N]...)
	wantOff := append([]int32(nil), ls.Off...)
	if err := g.ApplyEdits([]Edit{{Iter: 1, Preds: nil}}); err != nil {
		t.Fatalf("ApplyEdits: %v", err)
	}
	res := g.RepairLevelsInto(ls, []int32{1}, 4)
	if res.Ok {
		t.Fatalf("repair of a 63-iteration cone fit in budget 4: %+v", res)
	}
	if res.Cone != 5 {
		t.Fatalf("aborted cone = %d, want 5 (first pop past the budget)", res.Cone)
	}
	if !reflect.DeepEqual(ls.Level[:g.N], want) || !reflect.DeepEqual(ls.Off, wantOff) {
		t.Fatalf("level set not rolled back after budget abort")
	}
	// The caller's contract after Ok=false: run the cold path.
	ls = g.LevelsInto(ls)
	checkLevelSetMatchesCold(t, g, ls)
}

// checkLevelSetMatchesCold asserts ls is exactly the decomposition a cold
// LevelsInto of g would produce: same levels, same CSR grouping.
func checkLevelSetMatchesCold(t *testing.T, g *Graph, ls *LevelSet) {
	t.Helper()
	cold := g.LevelsInto(nil)
	if ls.Count() != cold.Count() {
		t.Fatalf("level count %d, want %d", ls.Count(), cold.Count())
	}
	if !reflect.DeepEqual(ls.Level[:g.N], cold.Level[:g.N]) {
		t.Fatalf("levels diverge from cold decomposition\n got %v\nwant %v", ls.Level[:g.N], cold.Level[:g.N])
	}
	if !reflect.DeepEqual(ls.Off[:ls.Count()+1], cold.Off[:cold.Count()+1]) {
		t.Fatalf("offsets diverge from cold decomposition\n got %v\nwant %v", ls.Off, cold.Off)
	}
	n := int(cold.Off[cold.Count()])
	if !reflect.DeepEqual(ls.Members[:n], cold.Members[:n]) {
		t.Fatalf("members diverge from cold decomposition\n got %v\nwant %v", ls.Members[:n], cold.Members[:n])
	}
}

// editableGraph pairs a graph with the per-iteration read sets that built it,
// so tests can mutate reads, apply the matching edits, and rebuild a fresh
// reference graph for comparison.
type editableGraph struct {
	n     int
	reads [][]int
}

func (e *editableGraph) build() *Graph {
	return Build(Access{
		N:      e.n,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return e.reads[i] },
	})
}

func randomEditable(rng *rand.Rand, n int) *editableGraph {
	e := &editableGraph{n: n, reads: make([][]int, n)}
	for i := 1; i < n; i++ {
		for d := 0; d < rng.Intn(4); d++ {
			e.reads[i] = append(e.reads[i], rng.Intn(i))
		}
	}
	return e
}

// randomEdit rewrites one iteration's read set in place and returns the
// matching graph edit (iteration i writes element i, so predecessors are the
// read targets below i, deduped).
func (e *editableGraph) randomEdit(rng *rand.Rand) Edit {
	i := 1 + rng.Intn(e.n-1)
	e.reads[i] = nil
	for d := 0; d < rng.Intn(5); d++ {
		e.reads[i] = append(e.reads[i], rng.Intn(i))
	}
	var preds []int32
	for _, r := range e.reads[i] {
		preds = append(preds, int32(r))
	}
	return Edit{Iter: i, Preds: preds}
}

// TestRepairLevelsProperty drives long random edit sequences over random DAGs
// and checks after every step that the incrementally repaired decomposition is
// identical to a cold one of the same (edited) graph.
func TestRepairLevelsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(120)
		e := randomEditable(rng, n)
		g := e.build()
		ls := g.LevelsInto(nil)
		for step := 0; step < 12; step++ {
			// Edit one to three iterations per step: multi-iteration edits
			// exercise the dirty-list dedup and the min-over-moves FromLevel.
			k := 1 + rng.Intn(3)
			var edits []Edit
			var dirty []int32
			for ; k > 0; k-- {
				ed := e.randomEdit(rng)
				edits = append(edits, ed)
				dirty = append(dirty, int32(ed.Iter))
			}
			if err := g.ApplyEdits(edits); err != nil {
				t.Fatalf("trial %d step %d: ApplyEdits: %v", trial, step, err)
			}
			res := g.RepairLevelsInto(ls, dirty, 0)
			if !res.Ok {
				t.Fatalf("trial %d step %d: unbounded repair reported a cone overflow", trial, step)
			}
			if res.Cone > n {
				t.Fatalf("trial %d step %d: cone %d exceeds %d iterations", trial, step, res.Cone, n)
			}
			checkLevelSetMatchesCold(t, g, ls)
			// The edited graph must equal a from-scratch build of the edited
			// access pattern (adjacency, reverse adjacency and edge count).
			if want := snapshotGraph(e.build()); !reflect.DeepEqual(snapshotGraph(g), want) {
				t.Fatalf("trial %d step %d: edited graph diverges from a fresh build", trial, step)
			}
			// Levels strictly below FromLevel kept their exact member lists.
			cold := g.LevelsInto(nil)
			for l := 0; l < res.FromLevel && l < cold.Count(); l++ {
				if !reflect.DeepEqual(ls.LevelMembers(l), cold.LevelMembers(l)) {
					t.Fatalf("trial %d step %d: level %d below FromLevel %d changed", trial, step, l, res.FromLevel)
				}
			}
		}
	}
}

// FuzzRepair decodes a base graph and an edit script from the fuzz input and
// cross-checks the incremental repair against a cold decomposition of the
// identically edited graph. The input is split by a 0xFF byte: the prefix
// builds the base graph (graphFromFuzzInput's encoding), the suffix is a
// sequence of (iteration, preds…) groups, each group terminated by 0xFE.
func FuzzRepair(f *testing.F) {
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3, 0xFF, 3, 0xFE})
	f.Add([]byte{8, 0, 4, 1, 4, 2, 5, 0xFF, 5, 2, 4, 0xFE, 4, 0, 0xFE})
	f.Add([]byte{16, 0, 8, 8, 12, 0xFF, 12, 0, 1, 2, 0xFE})
	f.Fuzz(func(t *testing.T, data []byte) {
		split := len(data)
		for k, b := range data {
			if b == 0xFF {
				split = k
				break
			}
		}
		g := graphFromFuzzInput(data[:split])
		ls := g.LevelsInto(nil)

		var edits []Edit
		var dirty []int32
		script := data[split:]
		if len(script) > 0 {
			script = script[1:] // drop the 0xFF separator
		}
		for len(script) > 0 {
			iter := int(script[0]) % g.N
			script = script[1:]
			var preds []int32
			for len(script) > 0 && script[0] != 0xFE {
				if iter > 0 {
					preds = append(preds, int32(int(script[0])%iter))
				}
				script = script[1:]
			}
			if len(script) > 0 {
				script = script[1:] // drop the 0xFE terminator
			}
			edits = append(edits, Edit{Iter: iter, Preds: preds})
			dirty = append(dirty, int32(iter))
		}
		if len(edits) == 0 {
			return
		}
		if err := g.ApplyEdits(edits); err != nil {
			t.Fatalf("ApplyEdits rejected in-range forward edits: %v", err)
		}
		res := g.RepairLevelsInto(ls, dirty, 0)
		if !res.Ok {
			t.Fatalf("unbounded repair reported a cone overflow: %+v", res)
		}
		checkLevelSetMatchesCold(t, g, ls)
	})
}
