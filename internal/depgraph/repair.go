package depgraph

import (
	"fmt"
	"sort"
)

// Edit replaces iteration Iter's predecessor list with Preds. It is the unit
// of an incremental graph update: when a loop's subscripts change for a few
// iterations (a mesh refinement step, ILU fill-in), the caller recomputes just
// those iterations' dependencies and applies them as edits instead of
// rebuilding the whole graph.
//
// ApplyEdits takes ownership of Preds (it may sort and deduplicate it in
// place and installs it into the graph); pass a fresh slice.
type Edit struct {
	Iter  int
	Preds []int32
}

// ApplyEdits applies the edits to the graph in order, updating Preds, the
// reverse adjacency and the edge count. Every predecessor must be an earlier
// iteration (the forward-edge invariant every Graph satisfies). The edits are
// validated before any mutation, so on error the graph is unchanged.
//
// Cost is O(Σ degree of the touched nodes), independent of N — the point of
// the incremental path.
func (g *Graph) ApplyEdits(edits []Edit) error {
	for k := range edits {
		e := &edits[k]
		if e.Iter < 0 || e.Iter >= g.N {
			return fmt.Errorf("depgraph: edit %d: iteration %d out of range [0, %d)", k, e.Iter, g.N)
		}
		e.Preds = dedupSorted(e.Preds)
		for _, p := range e.Preds {
			if p < 0 || int(p) >= e.Iter {
				return fmt.Errorf("depgraph: edit %d: predecessor %d of iteration %d is not an earlier iteration", k, p, e.Iter)
			}
		}
	}
	for _, e := range edits {
		i := int32(e.Iter)
		old := g.Preds[e.Iter]
		// Merge-walk the sorted old and new lists: predecessors only in the
		// old list lose i as a successor, ones only in the new list gain it.
		a, b := 0, 0
		for a < len(old) || b < len(e.Preds) {
			switch {
			case b == len(e.Preds) || (a < len(old) && old[a] < e.Preds[b]):
				g.Succs[old[a]] = removeSorted(g.Succs[old[a]], i)
				a++
			case a == len(old) || old[a] > e.Preds[b]:
				g.Succs[e.Preds[b]] = insertSorted(g.Succs[e.Preds[b]], i)
				b++
			default:
				a++
				b++
			}
		}
		g.Edges += len(e.Preds) - len(old)
		g.Preds[e.Iter] = e.Preds
	}
	return nil
}

// removeSorted deletes v from the ascending slice xs, preserving order. A
// missing v is a no-op.
func removeSorted(xs []int32, v int32) []int32 {
	k := sort.Search(len(xs), func(i int) bool { return xs[i] >= v })
	if k == len(xs) || xs[k] != v {
		return xs
	}
	return append(xs[:k], xs[k+1:]...)
}

// insertSorted inserts v into the ascending slice xs, preserving order. A
// present v is a no-op.
func insertSorted(xs []int32, v int32) []int32 {
	k := sort.Search(len(xs), func(i int) bool { return xs[i] >= v })
	if k < len(xs) && xs[k] == v {
		return xs
	}
	xs = append(xs, 0)
	copy(xs[k+1:], xs[k:])
	xs[k] = v
	return xs
}

// RepairResult describes what RepairLevelsInto did.
type RepairResult struct {
	// Ok is false when the dirty cone exceeded maxCone; the level set is
	// rolled back to its pre-call state and the caller should fall back to a
	// full LevelsInto.
	Ok bool
	// Cone is the number of iterations whose level was recomputed (the dirty
	// iterations plus the transitive successors the changes reached).
	Cone int
	// Changed is how many of those actually moved to a different level.
	Changed int
	// FromLevel is the earliest level whose membership changed; every level
	// below it kept its exact member list. When nothing moved it equals the
	// (unchanged) level count.
	FromLevel int
	// ChangedLevels lists the levels (in the repaired numbering) whose member
	// list differs from before, ascending. Levels ≥ FromLevel that are absent
	// kept their members (though their Members offsets may have shifted).
	ChangedLevels []int32
}

// RepairLevelsInto incrementally repairs the wavefront decomposition ls after
// the graph was changed with ApplyEdits. dirty lists the iterations whose
// predecessor lists were edited; ls must hold the decomposition of the graph
// as it was before those edits. The repair recomputes levels only for the
// dirty cone — the dirty iterations plus the transitive successors whose
// level actually changes — then rebuilds the Members/Off suffix from the
// earliest dirtied level, leaving the prefix untouched.
//
// maxCone bounds the cone: when more than maxCone iterations need
// recomputation the repair aborts, restores ls, and returns Ok=false so the
// caller can take the cold O(N + edges) path instead. maxCone <= 0 means
// unbounded.
//
// Cost is O(cone · degree) for the sweep plus O(N) for the suffix scatter —
// no closure calls, no graph construction, which is what makes single-row
// repairs orders of magnitude cheaper than a cold inspection.
func (g *Graph) RepairLevelsInto(ls *LevelSet, dirty []int32, maxCone int) RepairResult {
	res := RepairResult{Ok: true, FromLevel: ls.Count()}
	if len(dirty) == 0 {
		return res
	}
	// The worklist pops in ascending iteration order — a valid topological
	// order, because every edge points forward — so each popped iteration's
	// predecessors already hold final levels. Pushed successors are always
	// greater than the popped index, so nothing is ever popped twice.
	seen := make(map[int32]bool, 2*len(dirty))
	var h []int32
	for _, i := range dirty {
		if !seen[i] {
			seen[i] = true
			heapPush(&h, i)
		}
	}
	var changedIter, changedOld []int32
	for len(h) > 0 {
		i := heapPop(&h)
		res.Cone++
		if maxCone > 0 && res.Cone > maxCone {
			for k, it := range changedIter {
				ls.Level[it] = changedOld[k]
			}
			return RepairResult{Ok: false, Cone: res.Cone}
		}
		l := int32(0)
		for _, p := range g.Preds[i] {
			if lp := ls.Level[p] + 1; lp > l {
				l = lp
			}
		}
		if l == ls.Level[i] {
			continue
		}
		changedIter = append(changedIter, i)
		changedOld = append(changedOld, ls.Level[i])
		ls.Level[i] = l
		for _, s := range g.Succs[i] {
			if !seen[s] {
				seen[s] = true
				heapPush(&h, s)
			}
		}
	}
	res.Changed = len(changedIter)
	if res.Changed == 0 {
		return res
	}

	// Earliest level whose membership changed: an iteration moving between
	// levels a and b perturbs exactly those two, so the prefix below the
	// minimum over all moves is intact in both the old and new numbering.
	from := ls.Level[changedIter[0]]
	var touched []int32
	for k, it := range changedIter {
		oldL, newL := changedOld[k], ls.Level[it]
		if oldL < from {
			from = oldL
		}
		if newL < from {
			from = newL
		}
		touched = append(touched, oldL, newL)
	}
	res.FromLevel = int(from)

	// Rebuild the suffix [from, …] of the CSR grouping by rescanning Level —
	// a filtered counting sort over iteration order, which keeps each level's
	// members ascending without consulting (or sorting) the stale suffix.
	maxL := from
	for i := 0; i < g.N; i++ {
		if l := ls.Level[i]; l > maxL {
			maxL = l
		}
	}
	base := ls.Off[from]
	need := int(maxL) + 2
	if cap(ls.Off) < need {
		off := make([]int32, need)
		copy(off, ls.Off[:from+1])
		ls.Off = off
	} else {
		ls.Off = ls.Off[:need]
	}
	for l := int(from) + 1; l < need; l++ {
		ls.Off[l] = 0
	}
	for i := 0; i < g.N; i++ {
		if l := ls.Level[i]; l >= from {
			ls.Off[l+1]++
		}
	}
	ls.Off[from+1] += base
	for l := int(from) + 1; l <= int(maxL); l++ {
		ls.Off[l+1] += ls.Off[l]
	}
	// Scatter with Off[l] as the cursor of level l, then shift right to
	// restore the start offsets (the LevelsInto idiom, suffix-only).
	for i := 0; i < g.N; i++ {
		if l := ls.Level[i]; l >= from {
			ls.Members[ls.Off[l]] = int32(i)
			ls.Off[l]++
		}
	}
	for l := int(maxL) + 1; l > int(from); l-- {
		ls.Off[l] = ls.Off[l-1]
	}
	ls.Off[from] = base

	touched = dedupSorted(touched)
	for _, l := range touched {
		if int(l) <= int(maxL) {
			res.ChangedLevels = append(res.ChangedLevels, l)
		}
	}
	return res
}

// heapPush and heapPop maintain h as a binary min-heap of iteration indices —
// the repair worklist. Hand-rolled over []int32 to keep the repair path free
// of interface dispatch.
func heapPush(h *[]int32, x int32) {
	hs := append(*h, x)
	*h = hs
	c := len(hs) - 1
	for c > 0 {
		p := (c - 1) / 2
		if hs[p] <= hs[c] {
			break
		}
		hs[p], hs[c] = hs[c], hs[p]
		c = p
	}
}

func heapPop(h *[]int32) int32 {
	hs := *h
	top := hs[0]
	n := len(hs) - 1
	hs[0] = hs[n]
	hs = hs[:n]
	*h = hs
	p := 0
	for {
		c := 2*p + 1
		if c >= n {
			break
		}
		if c+1 < n && hs[c+1] < hs[c] {
			c++
		}
		if hs[p] <= hs[c] {
			break
		}
		hs[p], hs[c] = hs[c], hs[p]
		p = c
	}
	return top
}
