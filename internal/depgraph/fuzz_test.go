package depgraph

import (
	"testing"
)

// graphFromFuzzInput decodes an arbitrary byte string into a valid
// dependency DAG: iteration i writes element i, and successive byte pairs
// (a, b) add a read edge from a smaller to a larger iteration. Every input
// decodes to some graph, so the fuzzer explores shapes rather than parse
// errors.
func graphFromFuzzInput(data []byte) *Graph {
	n := 1
	if len(data) > 0 {
		n = 1 + int(data[0])%96
	}
	reads := make([][]int, n)
	for k := 1; k+1 < len(data); k += 2 {
		a := int(data[k]) % n
		b := int(data[k+1]) % n
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		reads[b] = append(reads[b], a)
	}
	return Build(Access{
		N:      n,
		Writes: func(i int) []int { return []int{i} },
		Reads:  func(i int) []int { return reads[i] },
	})
}

// FuzzLevelsInto cross-checks the allocation-free CSR decomposition against
// a naive reference on arbitrary DAGs: per-iteration levels must be minimal
// (0 for roots, 1 + max predecessor level otherwise — which implies
// topological validity: every predecessor sits in a strictly earlier
// level), and the CSR grouping must list every iteration exactly once, in
// its level, in ascending order.
func FuzzLevelsInto(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 0, 1, 1, 2, 2, 3})             // chain
	f.Add([]byte{8, 0, 4, 1, 4, 2, 5, 3, 5, 4, 6}) // two joins
	f.Add([]byte{95, 0, 94, 94, 0, 7, 7})          // extremes and self-loops
	f.Add([]byte{16, 0, 8, 8, 12, 12, 14, 14, 15}) // unbalanced chain
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graphFromFuzzInput(data)

		// Naive reference: forward sweep over the predecessor lists.
		want := make([]int32, g.N)
		for i := 0; i < g.N; i++ {
			l := int32(0)
			for _, p := range g.Preds[i] {
				if int(p) >= i {
					t.Fatalf("iteration %d has non-forward predecessor %d", i, p)
				}
				if want[p]+1 > l {
					l = want[p] + 1
				}
			}
			want[i] = l
		}

		ls := g.LevelsInto(nil)
		if got := ls.Count(); g.N > 0 {
			maxLevel := int32(0)
			for _, l := range want {
				if l > maxLevel {
					maxLevel = l
				}
			}
			if got != int(maxLevel)+1 {
				t.Fatalf("level count %d, want %d", got, maxLevel+1)
			}
		}
		for i := 0; i < g.N; i++ {
			if ls.Level[i] != want[i] {
				t.Fatalf("iteration %d: level %d, want minimal %d", i, ls.Level[i], want[i])
			}
			for _, p := range g.Preds[i] {
				if ls.Level[p] >= ls.Level[i] {
					t.Fatalf("iteration %d (level %d) not after predecessor %d (level %d)",
						i, ls.Level[i], p, ls.Level[p])
				}
			}
		}

		// CSR grouping: every iteration exactly once, in its own level's
		// segment, each segment ascending.
		seen := make([]bool, g.N)
		for l := 0; l < ls.Count(); l++ {
			members := ls.LevelMembers(l)
			for k, it := range members {
				if seen[it] {
					t.Fatalf("iteration %d listed twice", it)
				}
				seen[it] = true
				if ls.Level[it] != int32(l) {
					t.Fatalf("iteration %d in segment %d but has level %d", it, l, ls.Level[it])
				}
				if k > 0 && members[k-1] >= it {
					t.Fatalf("level %d members not ascending: %v", l, members)
				}
			}
			if len(members) == 0 {
				t.Fatalf("level %d is empty", l)
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("iteration %d missing from the decomposition", i)
			}
		}

		// Buffer reuse: decomposing a second, smaller graph into the same
		// LevelSet must not be polluted by the first decomposition.
		g2 := graphFromFuzzInput(append([]byte{byte(g.N/2 + 1)}, data...))
		if g2.N <= g.N {
			ls2 := g2.LevelsInto(ls)
			for i := 0; i < g2.N; i++ {
				l := int32(0)
				for _, p := range g2.Preds[i] {
					if ls2.Level[p]+1 > l {
						l = ls2.Level[p] + 1
					}
				}
				if ls2.Level[i] != l {
					t.Fatalf("reused buffers: iteration %d level %d, want %d", i, ls2.Level[i], l)
				}
			}
		}
	})
}
