package krylov

import (
	"testing"

	"doacross/internal/core"
	"doacross/internal/flags"
	"doacross/internal/sparse"
	"doacross/internal/stencil"
	"doacross/internal/trisolve"
)

func buildFivePoint(t *testing.T, nx, ny int) *sparse.CSR {
	t.Helper()
	a, err := stencil.FivePointGrid(nx, ny)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestCGUnpreconditionedSolvesLaplacian(t *testing.T) {
	a := buildFivePoint(t, 12, 12)
	xTrue := make([]float64, a.Rows)
	for i := range xTrue {
		xTrue[i] = float64(i%7) - 3
	}
	b := a.MulVec(xTrue, nil)
	x := make([]float64, a.Rows)
	res, err := CG(a, b, x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("CG did not converge: %v", res)
	}
	if d := sparse.VecMaxDiff(x, xTrue); d > 1e-6 {
		t.Fatalf("CG solution error %v", d)
	}
	if res.String() == "" {
		t.Error("empty result string")
	}
}

func TestCGJacobiPreconditioner(t *testing.T) {
	a := buildFivePoint(t, 10, 10)
	b := stencil.RHS(a.Rows, 3)
	x := make([]float64, a.Rows)
	jac, err := NewJacobi(a)
	if err != nil {
		t.Fatal(err)
	}
	res, err := CG(a, b, x, jac, Options{Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("Jacobi-PCG did not converge: %v", res)
	}
	// Verify residual directly.
	r := a.MulVec(x, nil)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	if sparse.VecNorm2(r)/sparse.VecNorm2(b) > 1e-8 {
		t.Fatal("residual too large")
	}
}

func TestNewJacobiRejectsZeroDiagonal(t *testing.T) {
	a, _ := sparse.FromTriplets(2, 2, []sparse.Triplet{{Row: 0, Col: 1, Val: 1}, {Row: 1, Col: 1, Val: 1}})
	if _, err := NewJacobi(a); err == nil {
		t.Error("zero diagonal accepted")
	}
}

func TestILUPCGConvergesFasterThanCG(t *testing.T) {
	a := buildFivePoint(t, 20, 20)
	b := stencil.RHS(a.Rows, 5)

	xPlain := make([]float64, a.Rows)
	plain, err := CG(a, b, xPlain, nil, Options{Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	xILU, ilu, err := SolveWithILU(a, b, nil, Options{Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !ilu.Converged {
		t.Fatalf("convergence failure: plain %v ilu %v", plain, ilu)
	}
	if ilu.Iterations >= plain.Iterations {
		t.Fatalf("ILU(0)-PCG (%d iters) should beat plain CG (%d iters)", ilu.Iterations, plain.Iterations)
	}
	if d := sparse.VecMaxDiff(xPlain, xILU); d > 1e-5 {
		t.Fatalf("solutions disagree by %v", d)
	}
}

func TestILUPCGWithParallelTriangularSolves(t *testing.T) {
	// The preconditioner's two substitutions are replaced by the
	// preprocessed-doacross solver; the iteration count and solution must be
	// unchanged (the doacross computes exactly the sequential result).
	a := buildFivePoint(t, 16, 16)
	b := stencil.RHS(a.Rows, 9)

	xSeq, seqRes, err := SolveWithILU(a, b, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Workers: 4, WaitStrategy: flags.WaitSpinYield}
	xPar, parRes, err := SolveWithILU(a, b, func(p *sparse.ILUPreconditioner) {
		// Only the forward substitution goes parallel here (as in the paper's
		// experiments, which time the forward solves); the reusable solver
		// keeps one runtime alive across all CG iterations.
		lower, e := trisolve.NewSolver(p.L, opts)
		if e != nil {
			t.Fatal(e)
		}
		t.Cleanup(lower.Close)
		p.SolveLower = func(tr *sparse.Triangular, rhs, y []float64) []float64 {
			sol, _, err := lower.Solve(rhs, y)
			if err != nil {
				t.Fatal(err)
			}
			return sol
		}
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Iterations != parRes.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", seqRes.Iterations, parRes.Iterations)
	}
	if d := sparse.VecMaxDiff(xSeq, xPar); d > 1e-10 {
		t.Fatalf("solutions differ by %v", d)
	}
}

func TestCGErrors(t *testing.T) {
	rect, _ := sparse.FromTriplets(2, 3, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := CG(rect, []float64{1, 2}, []float64{0, 0}, nil, Options{}); err == nil {
		t.Error("rectangular matrix accepted")
	}
	a := buildFivePoint(t, 3, 3)
	if _, err := CG(a, []float64{1}, make([]float64, a.Rows), nil, Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestCGZeroRHS(t *testing.T) {
	a := buildFivePoint(t, 5, 5)
	b := make([]float64, a.Rows)
	x := make([]float64, a.Rows)
	res, err := CG(a, b, x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs should converge immediately: %v", res)
	}
}

func TestCGMaxIterations(t *testing.T) {
	a := buildFivePoint(t, 15, 15)
	b := stencil.RHS(a.Rows, 1)
	x := make([]float64, a.Rows)
	res, err := CG(a, b, x, nil, Options{MaxIterations: 2, Tolerance: 1e-14})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged || res.Iterations != 2 {
		t.Fatalf("expected early stop after 2 iterations: %v", res)
	}
}

func TestIdentityPreconditioner(t *testing.T) {
	p := IdentityPreconditioner{}
	r := []float64{1, 2, 3}
	z := p.Apply(r, nil)
	if sparse.VecMaxDiff(r, z) != 0 {
		t.Error("identity preconditioner should copy r")
	}
}
