package krylov

import (
	"fmt"
	"math"

	"doacross/internal/sparse"
)

// BiCGSTAB solves A*x = b for general (nonsymmetric) A with the
// preconditioned stabilized bi-conjugate gradient method. The reservoir
// simulation operators behind the paper's SPE2/SPE5 systems are nonsymmetric,
// so this is the Krylov method their incomplete factorizations would actually
// be used with; the parallel triangular solves plug in through the
// preconditioner exactly as for CG.
//
// x is used as the initial guess and updated in place. A nil preconditioner
// means identity.
func BiCGSTAB(a *sparse.CSR, b, x []float64, m Preconditioner, opts Options) (Result, error) {
	if a.Rows != a.Cols {
		return Result{}, fmt.Errorf("krylov: BiCGSTAB requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows || len(x) != a.Rows {
		return Result{}, fmt.Errorf("krylov: dimension mismatch (A %dx%d, b %d, x %d)", a.Rows, a.Cols, len(b), len(x))
	}
	opts = opts.withDefaults()
	if m == nil {
		m = IdentityPreconditioner{}
	}
	n := a.Rows

	r := make([]float64, n)
	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	rHat := append([]float64(nil), r...) // shadow residual, fixed
	normB := sparse.VecNorm2(b)
	if normB == 0 {
		normB = 1
	}

	res := Result{Residual: sparse.VecNorm2(r) / normB}
	if res.Residual <= opts.Tolerance {
		res.Converged = true
		return res, nil
	}

	var (
		rho, rhoPrev, alpha, omega float64
		p                          = make([]float64, n)
		v                          = make([]float64, n)
		phat                       = make([]float64, n)
		shat                       = make([]float64, n)
		s                          = make([]float64, n)
		t                          = make([]float64, n)
	)
	rhoPrev, alpha, omega = 1, 1, 1

	for it := 1; it <= opts.MaxIterations; it++ {
		rho = sparse.VecDot(rHat, r)
		if rho == 0 || math.IsNaN(rho) {
			return res, fmt.Errorf("krylov: BiCGSTAB breakdown (rho = %v) at iteration %d", rho, it)
		}
		if it == 1 {
			copy(p, r)
		} else {
			beta := (rho / rhoPrev) * (alpha / omega)
			for i := range p {
				p[i] = r[i] + beta*(p[i]-omega*v[i])
			}
		}
		phat = m.Apply(p, phat)
		a.MulVec(phat, v)
		den := sparse.VecDot(rHat, v)
		if den == 0 || math.IsNaN(den) {
			return res, fmt.Errorf("krylov: BiCGSTAB breakdown (rHat'v = %v) at iteration %d", den, it)
		}
		alpha = rho / den
		for i := range s {
			s[i] = r[i] - alpha*v[i]
		}
		res.Iterations = it
		if ns := sparse.VecNorm2(s) / normB; ns <= opts.Tolerance {
			sparse.VecAXPY(alpha, phat, x)
			res.Residual = ns
			res.Converged = true
			return res, nil
		}
		shat = m.Apply(s, shat)
		a.MulVec(shat, t)
		tt := sparse.VecDot(t, t)
		if tt == 0 || math.IsNaN(tt) {
			return res, fmt.Errorf("krylov: BiCGSTAB breakdown (t't = %v) at iteration %d", tt, it)
		}
		omega = sparse.VecDot(t, s) / tt
		if omega == 0 {
			return res, fmt.Errorf("krylov: BiCGSTAB stagnation (omega = 0) at iteration %d", it)
		}
		sparse.VecAXPY(alpha, phat, x)
		sparse.VecAXPY(omega, shat, x)
		for i := range r {
			r[i] = s[i] - omega*t[i]
		}
		res.Residual = sparse.VecNorm2(r) / normB
		if res.Residual <= opts.Tolerance {
			res.Converged = true
			return res, nil
		}
		rhoPrev = rho
	}
	return res, nil
}

// SolveNonsymmetricWithILU factors A with ILU(0), optionally customizes the
// preconditioner's triangular solvers (e.g. with the parallel doacross
// solvers), and runs preconditioned BiCGSTAB from a zero initial guess.
func SolveNonsymmetricWithILU(a *sparse.CSR, b []float64, customize func(*sparse.ILUPreconditioner), opts Options) ([]float64, Result, error) {
	pre, err := sparse.NewILUPreconditioner(a)
	if err != nil {
		return nil, Result{}, err
	}
	if customize != nil {
		customize(pre)
	}
	x := make([]float64, a.Rows)
	res, err := BiCGSTAB(a, b, x, pre, opts)
	return x, res, err
}
