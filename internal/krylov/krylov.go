// Package krylov implements the motivating application of the paper's
// Section 3.2 experiments: preconditioned Krylov solvers whose sequential
// bottleneck is the sparse triangular solve of the incomplete factorization.
// (The paper cites Baxter, Saltz, Schultz, Eisenstat & Crowley 1988: "The
// solution of these sparse triangular systems accounts for a large fraction
// of the sequential execution time of linear solvers that use Krylov
// methods.")
//
// The package provides conjugate gradients (CG) and preconditioned CG with
// either a Jacobi or an ILU(0) preconditioner; the ILU triangular solves can
// be replaced with the parallel doacross solvers from package trisolve, which
// is what the krylov example application demonstrates.
package krylov

import (
	"fmt"
	"math"

	"doacross/internal/sparse"
)

// Preconditioner applies z = M^{-1} r.
type Preconditioner interface {
	Apply(r []float64, z []float64) []float64
}

// IdentityPreconditioner applies z = r (no preconditioning).
type IdentityPreconditioner struct{}

// Apply copies r into z.
func (IdentityPreconditioner) Apply(r, z []float64) []float64 {
	if z == nil {
		z = make([]float64, len(r))
	}
	copy(z, r)
	return z
}

// JacobiPreconditioner applies the inverse of the diagonal of A.
type JacobiPreconditioner struct {
	invDiag []float64
}

// NewJacobi builds a Jacobi preconditioner from the diagonal of A. Zero
// diagonal entries are rejected.
func NewJacobi(a *sparse.CSR) (*JacobiPreconditioner, error) {
	inv := make([]float64, a.Rows)
	for i := 0; i < a.Rows; i++ {
		d := a.At(i, i)
		if d == 0 {
			return nil, fmt.Errorf("krylov: zero diagonal at row %d", i)
		}
		inv[i] = 1 / d
	}
	return &JacobiPreconditioner{invDiag: inv}, nil
}

// Apply computes z = D^{-1} r.
func (p *JacobiPreconditioner) Apply(r, z []float64) []float64 {
	if z == nil {
		z = make([]float64, len(r))
	}
	for i := range r {
		z[i] = r[i] * p.invDiag[i]
	}
	return z
}

// Options configures an iterative solve.
type Options struct {
	// MaxIterations bounds the number of CG iterations (default 1000).
	MaxIterations int
	// Tolerance is the relative residual reduction target ||r||/||b||
	// (default 1e-8).
	Tolerance float64
}

func (o Options) withDefaults() Options {
	if o.MaxIterations <= 0 {
		o.MaxIterations = 1000
	}
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-8
	}
	return o
}

// Result reports the outcome of an iterative solve.
type Result struct {
	Iterations int
	Residual   float64
	Converged  bool
}

// String renders the result compactly.
func (r Result) String() string {
	return fmt.Sprintf("iters=%d residual=%.3e converged=%v", r.Iterations, r.Residual, r.Converged)
}

// CG solves A*x = b for symmetric positive definite A with (preconditioned)
// conjugate gradients. x is used as the initial guess and updated in place;
// pass a zero vector for a cold start. A nil preconditioner means identity.
func CG(a *sparse.CSR, b, x []float64, m Preconditioner, opts Options) (Result, error) {
	if a.Rows != a.Cols {
		return Result{}, fmt.Errorf("krylov: CG requires a square matrix, got %dx%d", a.Rows, a.Cols)
	}
	if len(b) != a.Rows || len(x) != a.Rows {
		return Result{}, fmt.Errorf("krylov: dimension mismatch (A %dx%d, b %d, x %d)", a.Rows, a.Cols, len(b), len(x))
	}
	opts = opts.withDefaults()
	if m == nil {
		m = IdentityPreconditioner{}
	}
	n := a.Rows

	r := make([]float64, n)
	a.MulVec(x, r)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	normB := sparse.VecNorm2(b)
	if normB == 0 {
		normB = 1
	}

	z := m.Apply(r, make([]float64, n))
	p := append([]float64(nil), z...)
	ap := make([]float64, n)
	rz := sparse.VecDot(r, z)

	res := Result{Residual: sparse.VecNorm2(r) / normB}
	if res.Residual <= opts.Tolerance {
		res.Converged = true
		return res, nil
	}

	for it := 1; it <= opts.MaxIterations; it++ {
		a.MulVec(p, ap)
		pap := sparse.VecDot(p, ap)
		if pap == 0 || math.IsNaN(pap) {
			return res, fmt.Errorf("krylov: breakdown at iteration %d (p'Ap = %v)", it, pap)
		}
		alpha := rz / pap
		sparse.VecAXPY(alpha, p, x)
		sparse.VecAXPY(-alpha, ap, r)

		res.Iterations = it
		res.Residual = sparse.VecNorm2(r) / normB
		if res.Residual <= opts.Tolerance {
			res.Converged = true
			return res, nil
		}

		z = m.Apply(r, z)
		rzNew := sparse.VecDot(r, z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	return res, nil
}

// SolveWithILU is a convenience wrapper: it factors A with ILU(0), builds the
// preconditioner (optionally with custom triangular solvers, e.g. the
// parallel doacross solvers), and runs preconditioned CG from a zero initial
// guess.
func SolveWithILU(a *sparse.CSR, b []float64, customize func(*sparse.ILUPreconditioner), opts Options) ([]float64, Result, error) {
	pre, err := sparse.NewILUPreconditioner(a)
	if err != nil {
		return nil, Result{}, err
	}
	if customize != nil {
		customize(pre)
	}
	x := make([]float64, a.Rows)
	res, err := CG(a, b, x, pre, opts)
	return x, res, err
}
