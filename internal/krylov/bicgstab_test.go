package krylov

import (
	"testing"

	"doacross/internal/core"
	"doacross/internal/flags"
	"doacross/internal/sparse"
	"doacross/internal/stencil"
	"doacross/internal/trisolve"
)

// nonsymmetricOperator builds a small convection-diffusion-like nonsymmetric
// operator (5-point Laplacian plus an upwind convection term).
func nonsymmetricOperator(t testing.TB, nx, ny int) *sparse.CSR {
	t.Helper()
	base, err := stencil.FivePointGrid(nx, ny)
	if err != nil {
		t.Fatal(err)
	}
	var ts []sparse.Triplet
	for i := 0; i < base.Rows; i++ {
		for k := base.RowPtr[i]; k < base.RowPtr[i+1]; k++ {
			v := base.Val[k]
			j := base.Col[k]
			if j == i-1 {
				v -= 0.4 // upwind bias makes the operator nonsymmetric
			}
			if j == i+1 {
				v += 0.2
			}
			ts = append(ts, sparse.Triplet{Row: i, Col: j, Val: v})
		}
	}
	a, err := sparse.FromTriplets(base.Rows, base.Cols, ts)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestBiCGSTABSolvesNonsymmetricSystem(t *testing.T) {
	a := nonsymmetricOperator(t, 14, 14)
	xTrue := make([]float64, a.Rows)
	for i := range xTrue {
		xTrue[i] = float64(i%5) - 2
	}
	b := a.MulVec(xTrue, nil)
	x := make([]float64, a.Rows)
	res, err := BiCGSTAB(a, b, x, nil, Options{Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("BiCGSTAB did not converge: %v", res)
	}
	if d := sparse.VecMaxDiff(x, xTrue); d > 1e-6 {
		t.Fatalf("solution error %v", d)
	}
}

func TestBiCGSTABWithILUConvergesFaster(t *testing.T) {
	a := nonsymmetricOperator(t, 20, 20)
	b := stencil.RHS(a.Rows, 4)

	xPlain := make([]float64, a.Rows)
	plain, err := BiCGSTAB(a, b, xPlain, nil, Options{Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	xILU, ilu, err := SolveNonsymmetricWithILU(a, b, nil, Options{Tolerance: 1e-8})
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Converged || !ilu.Converged {
		t.Fatalf("convergence failure: plain %v ilu %v", plain, ilu)
	}
	if ilu.Iterations >= plain.Iterations {
		t.Fatalf("ILU(0)-BiCGSTAB (%d iters) should beat plain BiCGSTAB (%d iters)", ilu.Iterations, plain.Iterations)
	}
	// A relative-residual stop of 1e-8 does not bound the solution error that
	// tightly; the two runs only need to agree to engineering accuracy.
	if d := sparse.VecMaxDiff(xPlain, xILU); d > 1e-3 {
		t.Fatalf("solutions disagree by %v", d)
	}
}

func TestBiCGSTABWithParallelTriangularSolves(t *testing.T) {
	// Both ILU substitutions run as preprocessed doacross loops; the result
	// must be identical to the sequential preconditioner.
	a := nonsymmetricOperator(t, 16, 16)
	b := stencil.RHS(a.Rows, 9)
	xSeq, seqRes, err := SolveNonsymmetricWithILU(a, b, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{Workers: 4, WaitStrategy: flags.WaitSpinYield}
	xPar, parRes, err := SolveNonsymmetricWithILU(a, b, func(p *sparse.ILUPreconditioner) {
		// Both substitutions share two persistent doacross runtimes for the
		// whole solve (the reuse the paper's preprocessing is designed for).
		release, e := trisolve.UseDoacrossILU(p, opts)
		if e != nil {
			t.Fatal(e)
		}
		t.Cleanup(release)
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if seqRes.Iterations != parRes.Iterations {
		t.Fatalf("iteration counts differ: %d vs %d", seqRes.Iterations, parRes.Iterations)
	}
	if d := sparse.VecMaxDiff(xSeq, xPar); d > 1e-10 {
		t.Fatalf("solutions differ by %v", d)
	}
}

func TestBiCGSTABOnSyntheticSPEOperator(t *testing.T) {
	// The block seven point operator standing in for SPE2 is nonsymmetric;
	// ILU(0)-BiCGSTAB must solve it.
	a, err := stencil.BlockSevenPoint(4, 4, 3, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	xTrue := make([]float64, a.Rows)
	for i := range xTrue {
		xTrue[i] = 1 + float64(i%3)*0.5
	}
	b := a.MulVec(xTrue, nil)
	x, res, err := SolveNonsymmetricWithILU(a, b, nil, Options{Tolerance: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("did not converge: %v", res)
	}
	if d := sparse.VecMaxDiff(x, xTrue); d > 1e-6 {
		t.Fatalf("solution error %v", d)
	}
}

func TestBiCGSTABErrors(t *testing.T) {
	rect, _ := sparse.FromTriplets(2, 3, []sparse.Triplet{{Row: 0, Col: 0, Val: 1}})
	if _, err := BiCGSTAB(rect, []float64{1, 2}, []float64{0, 0}, nil, Options{}); err == nil {
		t.Error("rectangular matrix accepted")
	}
	a := nonsymmetricOperator(t, 3, 3)
	if _, err := BiCGSTAB(a, []float64{1}, make([]float64, a.Rows), nil, Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestBiCGSTABZeroRHS(t *testing.T) {
	a := nonsymmetricOperator(t, 4, 4)
	b := make([]float64, a.Rows)
	x := make([]float64, a.Rows)
	res, err := BiCGSTAB(a, b, x, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations != 0 {
		t.Fatalf("zero rhs should converge immediately: %v", res)
	}
}

func TestBiCGSTABMaxIterations(t *testing.T) {
	a := nonsymmetricOperator(t, 12, 12)
	b := stencil.RHS(a.Rows, 2)
	x := make([]float64, a.Rows)
	res, err := BiCGSTAB(a, b, x, nil, Options{MaxIterations: 2, Tolerance: 1e-15})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatalf("should not converge in 2 iterations: %v", res)
	}
	if res.Iterations != 2 {
		t.Fatalf("iterations = %d, want 2", res.Iterations)
	}
}
