package doastat

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with the current output")

// golden runs doastat with args and compares its stdout against the golden
// file, rewriting it under -update.
func golden(t *testing.T, name string, args []string) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	if code := Main(args, &stdout, &stderr); code != 0 {
		t.Fatalf("Main(%v) = %d, stderr: %s", args, code, stderr.String())
	}
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, stdout.Bytes(), 0o666); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(stdout.Bytes(), want) {
		t.Errorf("output differs from %s:\n--- got ---\n%s--- want ---\n%s", path, stdout.Bytes(), want)
	}
}

// TestGoldenTestloop pins the text report for a small Figure 4 test loop,
// including the new structure lines (stall weight, schedule rounds, read
// imbalance), the cost-model predictions with Auto's pick, the repair
// break-even section, the doconsider ordering table and the parallelism
// profile.
func TestGoldenTestloop(t *testing.T) {
	golden(t, "testloop_n200_m3_l6.golden", []string{"-kind", "testloop", "-n", "200", "-m", "3", "-l", "6"})
}

// TestGoldenTrisolve5PT pins the report for the fixed 5-point stencil
// substitution — a fully deterministic workload, so any output drift is a
// real behaviour change in the plan machinery or the report format.
func TestGoldenTrisolve5PT(t *testing.T) {
	golden(t, "trisolve_5pt.golden", []string{"-kind", "trisolve", "-problem", "5-PT"})
}

// TestGoldenMatrix pins the reports for both triangles of the committed
// MatrixMarket fixture, exercising the reader, the triangle extraction and
// the backward-substitution graph.
func TestGoldenMatrix(t *testing.T) {
	golden(t, "chain8_lower.golden", []string{"-kind", "matrix", "-matrix", "testdata/chain8.mtx", "-tri", "lower"})
	golden(t, "chain8_upper.golden", []string{"-kind", "matrix", "-matrix", "testdata/chain8.mtx", "-tri", "upper"})
}

// TestGoldenJSON pins the exported plan documents. The JSON golden doubles
// as the input fixture for TestGoldenPlanImport below, so an export-side
// schema change shows up as a diff here and exercises the import side there.
func TestGoldenJSON(t *testing.T) {
	golden(t, "testloop_n24_m2_l4.json", []string{"-kind", "testloop", "-n", "24", "-m", "2", "-l", "4", "-format", "json"})
	golden(t, "chain8_lower.json", []string{"-kind", "matrix", "-matrix", "testdata/chain8.mtx", "-format", "json"})
}

// TestGoldenPlanImport pins the text report rendered from a previously
// exported document: the plan round-trips through the JSON schema and the
// report is rebuilt from the document alone (note the "built for N workers"
// title and the recorded worker count driving the predictions).
func TestGoldenPlanImport(t *testing.T) {
	golden(t, "plan_import.golden", []string{"-kind", "plan", "-plan", "testdata/testloop_n24_m2_l4.json"})
}

// TestGoldenDOT pins the Graphviz rendering: one rank=same cluster per
// wavefront level, edges in canonical (ascending) order.
func TestGoldenDOT(t *testing.T) {
	golden(t, "testloop_n24_m2_l4.dot", []string{"-kind", "testloop", "-n", "24", "-m", "2", "-l", "4", "-format", "dot"})
	golden(t, "chain8_lower.dot", []string{"-kind", "matrix", "-matrix", "testdata/chain8.mtx", "-format", "dot"})
}

// TestDeprecatedDotFlag keeps the old loopstat -dot spelling working: it must
// produce byte-identical output to -format dot.
func TestDeprecatedDotFlag(t *testing.T) {
	args := []string{"-kind", "testloop", "-n", "24", "-m", "2", "-l", "4"}
	var oldForm, newForm, stderr bytes.Buffer
	if code := Main(append(args[:len(args):len(args)], "-dot"), &oldForm, &stderr); code != 0 {
		t.Fatalf("-dot run failed: %d, %s", code, stderr.String())
	}
	if code := Main(append(args[:len(args):len(args)], "-format", "dot"), &newForm, &stderr); code != 0 {
		t.Fatalf("-format dot run failed: %d, %s", code, stderr.String())
	}
	if !bytes.Equal(oldForm.Bytes(), newForm.Bytes()) {
		t.Errorf("-dot and -format dot disagree:\n--- -dot ---\n%s--- -format dot ---\n%s", oldForm.Bytes(), newForm.Bytes())
	}
}

// TestJSONDeterministic runs the same export twice and demands identical
// bytes — the property the committed JSON goldens (and any diff-based
// tooling on top of them) rely on.
func TestJSONDeterministic(t *testing.T) {
	args := []string{"-kind", "trisolve", "-problem", "5-PT", "-format", "json"}
	var first, second, stderr bytes.Buffer
	if code := Main(args, &first, &stderr); code != 0 {
		t.Fatalf("first run failed: %d, %s", code, stderr.String())
	}
	if code := Main(args, &second, &stderr); code != 0 {
		t.Fatalf("second run failed: %d, %s", code, stderr.String())
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Error("two identical exports produced different bytes")
	}
}

// TestBadFlags pins the error paths: every bad invocation exits nonzero
// without touching stdout. Flag-parse errors exit 2 (the flag package's
// convention); semantic errors exit 1.
func TestBadFlags(t *testing.T) {
	for _, tc := range []struct {
		args []string
		code int
	}{
		{[]string{"-nosuchflag"}, 2},
		{[]string{"-n", "notanumber"}, 2},
		{[]string{"-kind", "nosuch"}, 1},
		{[]string{"-kind", "trisolve", "-problem", "nosuch"}, 1},
		{[]string{"-kind", "testloop", "-n", "-3"}, 1},
		{[]string{"-format", "yaml"}, 1},
		{[]string{"-workers", "0"}, 1},
		{[]string{"-nrhs", "0"}, 1},
		{[]string{"-kind", "matrix"}, 1},                                                       // no -matrix
		{[]string{"-kind", "matrix", "-matrix", "testdata/nosuch.mtx"}, 1},                     // unreadable file
		{[]string{"-kind", "matrix", "-matrix", "testdata/chain8.mtx", "-tri", "diagonal"}, 1}, // unknown triangle
		{[]string{"-kind", "plan"}, 1},                                                         // no -plan
		{[]string{"-kind", "plan", "-plan", "testdata/nosuch.json"}, 1},                        // unreadable plan
		{[]string{"-kind", "plan", "-plan", "testdata/chain8.mtx"}, 1},                         // not a plan document
		{[]string{"-format", "dot"}, 1},                                                        // default N=10000 exceeds the DOT node cap
	} {
		var stdout, stderr bytes.Buffer
		if code := Main(tc.args, &stdout, &stderr); code != tc.code {
			t.Errorf("Main(%v) = %d, want %d (stderr: %s)", tc.args, code, tc.code, stderr.String())
		}
		if stdout.Len() != 0 {
			t.Errorf("Main(%v) wrote to stdout on failure: %q", tc.args, stdout.String())
		}
	}
}
