// Package doastat implements the doastat plan-diagnosis tool behind a
// testable seam: given a workload — the paper's Figure 4 test loop, a Table 1
// triangular solve, a MatrixMarket matrix, or an exported plan document — it
// inspects the loop through the same wavefront-plan machinery the runtime
// uses and reports the dependency structure, the cost model's three
// per-executor predictions and Auto's pick, the incremental-repair break-even
// cone, the doconsider orderings and the parallelism profile. Output formats:
// a human-readable text report, the versioned JSON plan document (package
// export), or Graphviz DOT.
//
// Every number in the report is deterministic: graphs and schedules are
// byte-stable for a given workload, and the cost model runs on nominal
// coefficients (overridable by flag) instead of host-measured probes.
package doastat

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"doacross/internal/core"
	"doacross/internal/depgraph"
	"doacross/internal/doconsider"
	"doacross/internal/export"
	"doacross/internal/machine"
	"doacross/internal/sparse"
	"doacross/internal/stencil"
	"doacross/internal/testloop"
	"doacross/internal/trisolve"
	"doacross/internal/tune"
)

// Nominal cost-model coefficients, in nanoseconds. They approximate a
// mid-range host (a pool barrier near a microsecond, a flag check a few
// nanoseconds, a contended claim an order of magnitude above it) and exist to
// make the report deterministic; pass the -barrier-ns family of flags to
// diagnose against measured coefficients instead.
const (
	DefaultBarrierNs   = 1000
	DefaultFlagCheckNs = 5
	DefaultClaimNs     = 25
	DefaultIterNs      = 0
)

// maxDOTNodes caps DOT output; past a few hundred nodes a rendered graph is
// unreadable anyway.
const maxDOTNodes = 200

// Main is the whole tool behind a testable seam: flags in, report out,
// process exit code returned. cmd/doastat (and the deprecated cmd/loopstat
// alias) call it with os.Args[1:].
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("doastat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		kind    = fs.String("kind", "testloop", "testloop | trisolve | matrix | plan")
		n       = fs.Int("n", 10000, "test loop outer iteration count")
		m       = fs.Int("m", 5, "test loop inner length M")
		l       = fs.Int("l", 12, "test loop parameter L")
		problem = fs.String("problem", "5-PT", "trisolve problem: SPE2, SPE5, 5-PT, 7-PT, 9-PT")
		seed    = fs.Int64("seed", 1, "seed for synthetic SPE operators")
		matrix  = fs.String("matrix", "", "MatrixMarket file for -kind matrix")
		tri     = fs.String("tri", "lower", "triangle of the matrix to solve: lower | upper")
		planArg = fs.String("plan", "", "exported plan document (JSON) for -kind plan")
		format  = fs.String("format", "text", "output format: text | json | dot")
		dot     = fs.Bool("dot", false, "deprecated alias for -format dot")
		workers = fs.Int("workers", 4, "worker count the plan and predictions assume")
		nrhs    = fs.Int("nrhs", 1, "right-hand-side block width the predictions assume")

		barrierNs   = fs.Float64("barrier-ns", DefaultBarrierNs, "cost model: pool barrier cost in ns")
		flagCheckNs = fs.Float64("flagcheck-ns", DefaultFlagCheckNs, "cost model: per-read flag check cost in ns")
		claimNs     = fs.Float64("claim-ns", DefaultClaimNs, "cost model: dynamic chunk claim cost in ns (0 excludes the dynamic executor)")
		iterNs      = fs.Float64("iter-ns", DefaultIterNs, "cost model: per-iteration body cost in ns")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *dot {
		*format = "dot"
	}
	switch *format {
	case "text", "json", "dot":
	default:
		fmt.Fprintf(stderr, "unknown format %q (text, json or dot)\n", *format)
		return 1
	}
	if *workers < 1 {
		fmt.Fprintf(stderr, "workers must be at least 1, got %d\n", *workers)
		return 1
	}
	if *nrhs < 1 {
		fmt.Fprintf(stderr, "nrhs must be at least 1, got %d\n", *nrhs)
		return 1
	}

	doc, g, title, err := build(*kind, buildConfig{
		n: *n, m: *m, l: *l,
		problem: *problem, seed: *seed,
		matrix: *matrix, tri: *tri,
		plan:    *planArg,
		workers: *workers,
	})
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}

	switch *format {
	case "json":
		if err := export.EncodeJSON(stdout, doc); err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	case "dot":
		if doc.Iterations > maxDOTNodes {
			fmt.Fprintf(stderr, "graph has %d nodes; DOT output is limited to %d\n", doc.Iterations, maxDOTNodes)
			return 1
		}
		fmt.Fprint(stdout, doc.DOT())
	default:
		costs := core.AutoCosts{
			BarrierNs:   *barrierNs,
			FlagCheckNs: *flagCheckNs,
			ClaimNs:     *claimNs,
			IterNs:      *iterNs,
		}
		// A plan document carries the worker count it was built for; the live
		// kinds build at the requested count.
		p := *workers
		if *kind == "plan" {
			p = doc.Workers
		}
		report(stdout, title, doc.Stats.InspectStats(), g, costs, p, *nrhs)
	}
	return 0
}

// buildConfig carries the per-kind flag values into build.
type buildConfig struct {
	n, m, l int
	problem string
	seed    int64
	matrix  string
	tri     string
	plan    string
	workers int
}

// build resolves the requested workload into the plan document, the
// dependency graph (for the graph-walking report sections) and the report
// title.
func build(kind string, c buildConfig) (*export.Doc, *depgraph.Graph, string, error) {
	switch kind {
	case "testloop":
		tc := testloop.Config{N: c.n, M: c.m, L: c.l}
		if err := tc.Validate(); err != nil {
			return nil, nil, "", err
		}
		name := fmt.Sprintf("testloop-n%d-m%d-l%d", c.n, c.m, c.l)
		title := fmt.Sprintf("Figure 4 test loop N=%d M=%d L=%d", c.n, c.m, c.l)
		doc, err := snapshotDoc(name, tc.Loop(), tc.DataLen(), c.workers)
		if err != nil {
			return nil, nil, "", err
		}
		return doc, tc.Graph(), title, nil
	case "trisolve":
		var prob stencil.Problem
		found := false
		for _, p := range stencil.Problems {
			if strings.EqualFold(p.String(), c.problem) {
				prob, found = p, true
			}
		}
		if !found {
			return nil, nil, "", fmt.Errorf("unknown problem %q", c.problem)
		}
		lower, _, err := stencil.LowerFactor(prob, c.seed)
		if err != nil {
			return nil, nil, "", err
		}
		loop, err := trisolve.Loop(lower, make([]float64, lower.N))
		if err != nil {
			return nil, nil, "", err
		}
		name := fmt.Sprintf("trisolve-%s-seed%d", prob, c.seed)
		title := fmt.Sprintf("forward substitution for the ILU(0) factor of %v (%d equations)", prob, lower.N)
		doc, err := snapshotDoc(name, loop, lower.N, c.workers)
		if err != nil {
			return nil, nil, "", err
		}
		return doc, trisolve.Graph(lower), title, nil
	case "matrix":
		if c.matrix == "" {
			return nil, nil, "", fmt.Errorf("-kind matrix requires -matrix <file.mtx>")
		}
		f, err := os.Open(c.matrix)
		if err != nil {
			return nil, nil, "", err
		}
		defer f.Close()
		a, err := sparse.ReadMatrixMarket(f)
		if err != nil {
			return nil, nil, "", err
		}
		if a.Rows != a.Cols {
			return nil, nil, "", fmt.Errorf("matrix is %dx%d; a triangular solve needs a square matrix", a.Rows, a.Cols)
		}
		var (
			t     *sparse.Triangular
			loop  *core.Loop
			g     *depgraph.Graph
			sweep string
		)
		switch c.tri {
		case "lower":
			t = sparse.LowerTriangle(a)
			if loop, err = trisolve.Loop(t, make([]float64, t.N)); err == nil {
				g = trisolve.Graph(t)
			}
			sweep = "forward"
		case "upper":
			t = sparse.UpperTriangle(a)
			if loop, err = trisolve.UpperLoop(t, make([]float64, t.N)); err == nil {
				g = trisolve.UpperGraph(t)
			}
			sweep = "backward"
		default:
			return nil, nil, "", fmt.Errorf("unknown triangle %q (lower or upper)", c.tri)
		}
		if err != nil {
			return nil, nil, "", err
		}
		name := fmt.Sprintf("%s-%s", filepath.Base(c.matrix), c.tri)
		title := fmt.Sprintf("%s substitution for the %s triangle of %s (%d equations)", sweep, c.tri, c.matrix, t.N)
		doc, err := snapshotDoc(name, loop, t.N, c.workers)
		if err != nil {
			return nil, nil, "", err
		}
		return doc, g, title, nil
	case "plan":
		if c.plan == "" {
			return nil, nil, "", fmt.Errorf("-kind plan requires -plan <file.json>")
		}
		f, err := os.Open(c.plan)
		if err != nil {
			return nil, nil, "", err
		}
		defer f.Close()
		doc, err := export.DecodeJSON(f)
		if err != nil {
			return nil, nil, "", err
		}
		title := fmt.Sprintf("plan %q (schema %d, built for %d workers)", doc.Name, doc.Schema, doc.Workers)
		return doc, depgraph.FromPreds(doc.Preds), title, nil
	default:
		return nil, nil, "", fmt.Errorf("unknown kind %q", kind)
	}
}

// snapshotDoc inspects the loop through a throwaway wavefront runtime — the
// exact plan machinery a real run uses — and exports the resulting plan.
func snapshotDoc(name string, l *core.Loop, dataLen, workers int) (*export.Doc, error) {
	rt := core.NewRuntime(dataLen, core.Options{Workers: workers, Executor: core.ExecWavefront})
	defer rt.Close()
	snap, err := rt.PlanSnapshot(l)
	if err != nil {
		return nil, err
	}
	return export.FromSnapshot(name, snap), nil
}

// report renders the text diagnosis.
func report(w io.Writer, title string, st core.InspectStats, g *depgraph.Graph, costs core.AutoCosts, workers, nrhs int) {
	fmt.Fprintf(w, "Dependency structure of %s\n", title)
	fmt.Fprintf(w, "  iterations        %d\n", st.Iterations)
	fmt.Fprintf(w, "  dependency edges  %d\n", st.Edges)
	fmt.Fprintf(w, "  wavefront levels  %d\n", st.Levels)
	fmt.Fprintf(w, "  widest level      %d iterations\n", st.MaxLevelWidth)
	fmt.Fprintf(w, "  mean level width  %.1f iterations\n", st.MeanLevelWidth)
	fmt.Fprintf(w, "  critical path     %d iterations\n", st.CriticalPathLen)
	if st.CriticalPathLen > 0 {
		fmt.Fprintf(w, "  max speedup       %.1fx (unit cost, unbounded processors)\n",
			float64(st.Iterations)/float64(st.CriticalPathLen))
	}
	fmt.Fprintf(w, "  stall weight      %.1f stalled iterations\n", st.StallWeight)
	fmt.Fprintf(w, "  schedule rounds   %d\n", st.ScheduleRounds)
	fmt.Fprintf(w, "  read imbalance    %.1f extra read terms\n", st.ReadImbalance)
	fmt.Fprintf(w, "  dynamic claims    %d\n", st.DynamicClaims)
	if st.Edges == 0 {
		fmt.Fprintln(w, "  the loop is fully independent: a doall would suffice")
	}

	tda, twf, tdyn := costs.PredictN(st, workers, nrhs)
	pick := costs.Choose(st, workers, nrhs)
	fmt.Fprintf(w, "\nCost model (%d workers, %d rhs; barrier=%.0f flagCheck=%.0f claim=%.0f iter=%.0f ns):\n",
		workers, nrhs, costs.BarrierNs, costs.FlagCheckNs, costs.ClaimNs, costs.IterNs)
	fmt.Fprintf(w, "  doacross          %12.0f ns\n", tda)
	fmt.Fprintf(w, "  wavefront         %12.0f ns\n", twf)
	if tdyn > 0 {
		fmt.Fprintf(w, "  wavefront-dynamic %12.0f ns\n", tdyn)
	} else {
		fmt.Fprintln(w, "  wavefront-dynamic not considered (no claim cost)")
	}
	fmt.Fprintf(w, "  auto picks        %s\n", pick)

	// The tuning forecast replays the runtime's online self-tuning state
	// machine (machine.SimulateTuning — the exact tune.PlanState a live
	// WithOnlineTuning runtime drives) against a deterministic ground truth:
	// the cost model above is taken as the real executor times, and the
	// simulated tuner starts from adversarial coefficients — barrier priced
	// 10x low, flag check 10x high, body weight unknown — that pull the model
	// toward the wrong executor. The section shows how many measured runs the
	// feedback needs to settle on the truly fastest executor and how far the
	// calibrated coefficients travel.
	truth := machine.TuningTruth{DoacrossNs: tda, WavefrontNs: twf, DynamicNs: tdyn}
	start := tune.Coeffs{
		BarrierNs:   costs.BarrierNs / 10,
		FlagCheckNs: 10 * costs.FlagCheckNs,
		ClaimNs:     costs.ClaimNs,
	}
	const tuningRuns = 32
	traj := machine.SimulateTuning(truth, start, tune.Stats{
		Iterations: st.Iterations, Edges: st.Edges, StallWeight: st.StallWeight,
		Levels: st.Levels, CriticalPathLen: st.CriticalPathLen,
		ScheduleRounds: st.ScheduleRounds, ReadImbalance: st.ReadImbalance,
		DynamicClaims: st.DynamicClaims,
	}, workers, nrhs, tuningRuns, tune.Options{Seed: 1})
	fmt.Fprintf(w, "\nOnline tuning forecast (%d simulated runs, overheads seeded adversarially 10x off):\n", tuningRuns)
	if traj.ConvergedAt < 0 {
		fmt.Fprintf(w, "  settles on        never (within %d runs)\n", tuningRuns)
	} else {
		fmt.Fprintf(w, "  settles on        %s at run %d\n",
			tune.ExecutorName(truth.BestArm()), traj.ConvergedAt)
	}
	fmt.Fprintf(w, "  explorations      %d of %d runs\n", traj.Final.Explorations, tuningRuns)
	fc := traj.Final.Coeffs
	fmt.Fprintf(w, "  final calibration barrier=%.0f flagCheck=%.1f claim=%.0f iter=%.1f ns\n",
		fc.BarrierNs, fc.FlagCheckNs, fc.ClaimNs, fc.IterNs)
	if len(traj.Steps) > 0 {
		fmt.Fprintf(w, "  prediction error  %.0f ns at run 0, %.0f ns at run %d\n",
			traj.Steps[0].ErrNs, traj.Steps[len(traj.Steps)-1].ErrNs, len(traj.Steps)-1)
	}

	// The repair break-even report is purely a function of the graph's size
	// and the default cost-model ratios, so it is deterministic across hosts:
	// it tells the user how large an edit's dirty cone may grow before
	// RepairPlans' gate falls back to a cold re-inspection.
	rc := machine.DefaultRepairCosts
	breakEven := rc.BreakEvenCone(st.Iterations, st.Edges)
	fmt.Fprintln(w, "\nIncremental plan repair (cost-model units):")
	fmt.Fprintf(w, "  cold inspection   %.0f units\n", rc.ColdInspect(st.Iterations, st.Edges))
	if breakEven >= st.Iterations {
		// A dense enough graph makes the cold inspection so expensive that
		// even a whole-loop dirty cone repairs cheaper.
		fmt.Fprintln(w, "  break-even cone   whole loop (every edit repairs, none falls back cold)")
	} else {
		fmt.Fprintf(w, "  break-even cone   %d iterations (%.1f%% of the loop)\n",
			breakEven, 100*float64(breakEven)/float64(st.Iterations))
	}

	fmt.Fprintln(w, "\nDoconsider orderings (mean positions between dependent iterations — larger is more slack):")
	for _, s := range doconsider.Strategies {
		plan := doconsider.NewPlan(g, s)
		fmt.Fprintf(w, "  %-18s mean wait distance %8.1f\n", s.String(), plan.MeanWaitDistance)
	}

	profile := g.ParallelismProfile()
	if len(profile) > 0 {
		fmt.Fprintln(w, "\nParallelism profile (iterations per wavefront level, first 20 levels):")
		limit := len(profile)
		if limit > 20 {
			limit = 20
		}
		for lvl := 0; lvl < limit; lvl++ {
			fmt.Fprintf(w, "  level %3d: %d\n", lvl, profile[lvl])
		}
		if len(profile) > limit {
			fmt.Fprintf(w, "  ... (%d more levels)\n", len(profile)-limit)
		}
	}
}
