// Package doconsider implements the iteration-reordering transformation the
// paper applies before the preprocessed doacross in Section 3.2 (Table 1) and
// attributes to Saltz, Mirchandaney & Crowley, "The doconsider loop" (ICS
// 1989): the loop iterations are executed in a more advantageous order that
// leaves the inter-iteration dependencies unchanged but reduces the time
// processors spend waiting on them.
//
// All orderings produced here are topological orders of the true-dependency
// graph, so the preprocessed doacross executor can run them without risk of
// deadlock (core.Options.Order).
package doconsider

import (
	"fmt"
	"sort"

	"doacross/internal/depgraph"
)

// Strategy selects how the new iteration order is derived from the dependency
// graph.
type Strategy int

const (
	// Natural keeps the original order (the identity permutation). It exists
	// so experiments can treat "no reordering" uniformly.
	Natural Strategy = iota
	// Level orders iterations by wavefront: all iterations with no
	// unsatisfied predecessors first, then those that depend only on the
	// first wave, and so on. Within a level the original order is kept.
	// This is the classic doconsider ordering for sparse triangular solves.
	Level
	// LevelInterleaved also orders by wavefront but round-robins the
	// iterations of each level across positions, so a block distribution of
	// positions to processors spreads every level over all processors.
	LevelInterleaved
	// CriticalPath uses list scheduling by longest remaining chain: at every
	// step the ready iteration with the greatest height in the dependency
	// graph comes first. It is the greedy upper bound on what reordering can
	// achieve.
	CriticalPath
)

// Strategies lists all reordering strategies (used by the ablation
// experiments).
var Strategies = []Strategy{Natural, Level, LevelInterleaved, CriticalPath}

// String returns a short name for the strategy.
func (s Strategy) String() string {
	switch s {
	case Natural:
		return "natural"
	case Level:
		return "level"
	case LevelInterleaved:
		return "level-interleaved"
	case CriticalPath:
		return "critical-path"
	default:
		return "unknown"
	}
}

// Order computes the execution order for the graph under the strategy:
// position k of the result holds the original index of the iteration to
// execute at that position. The result is always a valid topological order of
// g.
func Order(g *depgraph.Graph, s Strategy) []int {
	switch s {
	case Level:
		return levelOrder(g)
	case LevelInterleaved:
		return levelInterleavedOrder(g)
	case CriticalPath:
		return criticalPathOrder(g)
	default:
		order := make([]int, g.N)
		for i := range order {
			order[i] = i
		}
		return order
	}
}

// Validate checks that order is a permutation of 0..g.N-1 that respects every
// dependency edge of g, which is the precondition for handing it to
// core.Options.Order.
func Validate(g *depgraph.Graph, order []int) error {
	if len(order) != g.N {
		return fmt.Errorf("doconsider: order has %d entries for %d iterations", len(order), g.N)
	}
	if !g.IsTopologicalOrder(order) {
		return fmt.Errorf("doconsider: order is not a topological order of the dependency graph")
	}
	return nil
}

func levelOrder(g *depgraph.Graph) []int {
	_, byLevel := g.Levels()
	order := make([]int, 0, g.N)
	for _, lvl := range byLevel {
		order = append(order, lvl...)
	}
	return order
}

func levelInterleavedOrder(g *depgraph.Graph) []int {
	_, byLevel := g.Levels()
	order := make([]int, 0, g.N)
	// Keep whole levels contiguous (correctness requires predecessors
	// earlier) but interleave *within* each level by striding, so that a
	// block distribution of positions hands neighbouring iterations of the
	// same level to different processors.
	const stride = 16
	for _, lvl := range byLevel {
		for offset := 0; offset < stride; offset++ {
			for k := offset; k < len(lvl); k += stride {
				order = append(order, lvl[k])
			}
		}
	}
	return order
}

// criticalPathOrder performs list scheduling by decreasing height (length of
// the longest chain that starts at the iteration).
func criticalPathOrder(g *depgraph.Graph) []int {
	// height[i] = 1 + max(height of successors); computed by a reverse sweep
	// (edges always point from lower to higher iteration index).
	height := make([]int, g.N)
	for i := g.N - 1; i >= 0; i-- {
		h := 0
		for _, s := range g.Succs[i] {
			if height[s] > h {
				h = height[s]
			}
		}
		height[i] = h + 1
	}
	indegree := make([]int, g.N)
	for i := 0; i < g.N; i++ {
		indegree[i] = len(g.Preds[i])
	}
	// Ready iterations sorted by (height desc, index asc).
	ready := make([]int, 0, g.N)
	for i := 0; i < g.N; i++ {
		if indegree[i] == 0 {
			ready = append(ready, i)
		}
	}
	less := func(a, b int) bool {
		if height[a] != height[b] {
			return height[a] > height[b]
		}
		return a < b
	}
	sort.Slice(ready, func(x, y int) bool { return less(ready[x], ready[y]) })

	order := make([]int, 0, g.N)
	for len(ready) > 0 {
		// Pop the best ready iteration (they are kept sorted; removal from
		// the front keeps the cost O(E + V log V) overall because newly
		// released iterations are inserted in place).
		it := ready[0]
		ready = ready[1:]
		order = append(order, it)
		for _, s := range g.Succs[it] {
			indegree[s]--
			if indegree[s] == 0 {
				// Insert s keeping the slice sorted.
				pos := sort.Search(len(ready), func(k int) bool { return less(int(s), ready[k]) })
				ready = append(ready, 0)
				copy(ready[pos+1:], ready[pos:])
				ready[pos] = int(s)
			}
		}
	}
	return order
}

// Plan couples an execution order with summary information used by reports.
type Plan struct {
	Strategy Strategy
	Order    []int
	Levels   int
	// MeanWaitDistance is the average, over all dependency edges, of the
	// number of positions separating the dependent iteration from its
	// predecessor in the new order. Larger distances mean more slack for the
	// doacross pipeline.
	MeanWaitDistance float64
}

// NewPlan builds the order for the strategy and computes its summary.
func NewPlan(g *depgraph.Graph, s Strategy) Plan {
	order := Order(g, s)
	pos := make([]int, g.N)
	for k, it := range order {
		pos[it] = k
	}
	totalDist := 0.0
	edges := 0
	for i := 0; i < g.N; i++ {
		for _, p := range g.Preds[i] {
			totalDist += float64(pos[i] - pos[p])
			edges++
		}
	}
	_, byLevel := g.Levels()
	plan := Plan{Strategy: s, Order: order, Levels: len(byLevel)}
	if edges > 0 {
		plan.MeanWaitDistance = totalDist / float64(edges)
	}
	return plan
}
