package doconsider_test

import (
	"fmt"

	"doacross/internal/depgraph"
	"doacross/internal/doconsider"
)

// ExampleOrder reorders a 2x3 grid solve (row-major natural order) by
// wavefront level: iterations of the same anti-diagonal become adjacent, so a
// parallel executor can run them without waiting on one another.
func ExampleOrder() {
	const nx, ny = 2, 3
	g := depgraph.Build(depgraph.Access{
		N:      nx * ny,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(it int) []int {
			i, j := it/ny, it%ny
			var r []int
			if i > 0 {
				r = append(r, (i-1)*ny+j)
			}
			if j > 0 {
				r = append(r, it-1)
			}
			return r
		},
	})
	natural := doconsider.Order(g, doconsider.Natural)
	level := doconsider.Order(g, doconsider.Level)
	fmt.Println("natural:", natural)
	fmt.Println("level:  ", level)
	fmt.Println("both topological:", g.IsTopologicalOrder(natural) && g.IsTopologicalOrder(level))
	// Output:
	// natural: [0 1 2 3 4 5]
	// level:   [0 1 3 2 4 5]
	// both topological: true
}

// ExampleNewPlan shows the slack metric a plan carries: the level ordering
// places dependent iterations further apart than the natural order, which is
// what reduces busy-wait time in the doacross executor.
func ExampleNewPlan() {
	// A chain with a side branch: 0 -> 1 -> 2 -> 3 and 0 -> 4.
	g := depgraph.Build(depgraph.Access{
		N:      5,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			switch i {
			case 1, 2, 3:
				return []int{i - 1}
			case 4:
				return []int{0}
			}
			return nil
		},
	})
	natural := doconsider.NewPlan(g, doconsider.Natural)
	level := doconsider.NewPlan(g, doconsider.Level)
	fmt.Printf("natural mean distance: %.2f\n", natural.MeanWaitDistance)
	fmt.Printf("level mean distance:   %.2f\n", level.MeanWaitDistance)
	// Output:
	// natural mean distance: 1.75
	// level mean distance:   1.50
}
