package doconsider

import (
	"math/rand"
	"testing"
	"testing/quick"

	"doacross/internal/depgraph"
)

// randomDAG builds a random single-writer loop dependency graph.
func randomDAG(seed int64, n int) *depgraph.Graph {
	rng := rand.New(rand.NewSource(seed))
	write := make([]int, n)
	for i := range write {
		write[i] = i
	}
	reads := make([][]int, n)
	for i := 1; i < n; i++ {
		for k := 0; k < rng.Intn(3); k++ {
			reads[i] = append(reads[i], rng.Intn(i))
		}
	}
	return depgraph.BuildFromWriterIndex(n, write, func(i int) []int { return reads[i] })
}

// gridDAG builds the dependency graph of a forward substitution on the lower
// triangular factor of a 2-D five-point operator in row-major order:
// iteration (i,j) depends on (i-1,j) and (i,j-1). Its wavefronts are the
// anti-diagonals of the grid, which are not contiguous in the natural order —
// exactly the structure the doconsider reordering exploits.
func gridDAG(nx, ny int) *depgraph.Graph {
	n := nx * ny
	write := make([]int, n)
	for i := range write {
		write[i] = i
	}
	return depgraph.BuildFromWriterIndex(n, write, func(it int) []int {
		i, j := it/ny, it%ny
		var r []int
		if i > 0 {
			r = append(r, (i-1)*ny+j)
		}
		if j > 0 {
			r = append(r, i*ny+j-1)
		}
		return r
	})
}

func TestStrategyString(t *testing.T) {
	want := map[Strategy]string{
		Natural: "natural", Level: "level", LevelInterleaved: "level-interleaved",
		CriticalPath: "critical-path", Strategy(99): "unknown",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), w)
		}
	}
	if len(Strategies) != 4 {
		t.Errorf("Strategies has %d entries", len(Strategies))
	}
}

func TestNaturalOrderIsIdentity(t *testing.T) {
	g := randomDAG(1, 50)
	order := Order(g, Natural)
	for i, it := range order {
		if it != i {
			t.Fatalf("natural order not identity at %d: %d", i, it)
		}
	}
	if err := Validate(g, order); err != nil {
		t.Fatal(err)
	}
}

func TestAllStrategiesProduceTopologicalOrders(t *testing.T) {
	f := func(seed int64) bool {
		g := randomDAG(seed, 60)
		for _, s := range Strategies {
			if err := Validate(g, Order(g, s)); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLevelOrderGroupsWavefronts(t *testing.T) {
	g := gridDAG(10, 10)
	order := Order(g, Level)
	level, _ := g.Levels()
	for k := 1; k < len(order); k++ {
		if level[order[k]] < level[order[k-1]] {
			t.Fatalf("level order decreases at position %d", k)
		}
	}
}

func TestLevelInterleavedSameLevelSetPerPrefix(t *testing.T) {
	g := gridDAG(15, 14)
	plain := Order(g, Level)
	inter := Order(g, LevelInterleaved)
	if len(plain) != len(inter) {
		t.Fatal("length mismatch")
	}
	// Both must contain the same iterations overall.
	seen := make(map[int]bool)
	for _, it := range inter {
		seen[it] = true
	}
	if len(seen) != g.N {
		t.Fatal("interleaved order is not a permutation")
	}
	if err := Validate(g, inter); err != nil {
		t.Fatal(err)
	}
}

func TestCriticalPathOrderPrefersLongChains(t *testing.T) {
	// Graph: a long chain 0->1->2->...->9 plus ten independent iterations
	// 10..19. Critical-path ordering must start with the chain head.
	n := 20
	write := make([]int, n)
	for i := range write {
		write[i] = i
	}
	g := depgraph.BuildFromWriterIndex(n, write, func(i int) []int {
		if i >= 1 && i < 10 {
			return []int{i - 1}
		}
		return nil
	})
	order := Order(g, CriticalPath)
	if order[0] != 0 {
		t.Fatalf("critical-path order starts with %d, want chain head 0", order[0])
	}
	if err := Validate(g, order); err != nil {
		t.Fatal(err)
	}
	// The chain iterations must appear in increasing order.
	pos := make([]int, n)
	for k, it := range order {
		pos[it] = k
	}
	for i := 1; i < 10; i++ {
		if pos[i] < pos[i-1] {
			t.Fatal("chain order violated")
		}
	}
}

func TestValidateRejectsBadOrders(t *testing.T) {
	g := gridDAG(5, 2)
	if err := Validate(g, []int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	bad := Order(g, Level)
	bad[0], bad[len(bad)-1] = bad[len(bad)-1], bad[0]
	if err := Validate(g, bad); err == nil {
		t.Error("non-topological order accepted")
	}
}

func TestNewPlanWaitDistance(t *testing.T) {
	g := gridDAG(30, 8)
	natural := NewPlan(g, Natural)
	level := NewPlan(g, Level)
	if natural.Levels != level.Levels {
		t.Error("plan level count should not depend on strategy")
	}
	if level.MeanWaitDistance <= natural.MeanWaitDistance {
		t.Errorf("level ordering should increase mean wait distance: natural %.1f level %.1f",
			natural.MeanWaitDistance, level.MeanWaitDistance)
	}
	if natural.Order == nil || level.Order == nil {
		t.Error("plans must carry their orders")
	}
}

func TestNewPlanNoEdges(t *testing.T) {
	write := []int{0, 1, 2}
	g := depgraph.BuildFromWriterIndex(3, write, func(i int) []int { return nil })
	p := NewPlan(g, Level)
	if p.MeanWaitDistance != 0 {
		t.Error("edge-free graph should have zero mean wait distance")
	}
}
