package doacross

import (
	"context"
	"fmt"

	"doacross/internal/core"
	"doacross/internal/flags"
	"doacross/internal/sched"
)

// Loop describes a runtime-dependent loop over a shared data array. It is
// the same type the internal runtime executes, re-exported so loops built by
// in-module helpers (the test-loop generator, the triangular-solve layer)
// flow through the facade unchanged. Prefer NewLoop, which validates the
// description; a Loop literal works too and can be checked with Validate.
type Loop = core.Loop

// Values gives a loop body access to the shared array with the paper's
// execution-time dependency checks: Load performs the dependency check (and
// wait), Store writes through the renaming buffer, Fail aborts the run.
type Values = core.Values

// MultiValues gives a multi-RHS loop body (see LoopBuilder.BodyMulti and
// Runtime.RunMulti) access to a column block of the shared array: LoadRow
// performs one dependency check for a whole row of columns, Row exposes the
// iteration's writable output row.
type MultiValues = core.MultiValues

// MaxRHSBlock is the widest column block one traversal carries; RunMulti and
// Solver.SolveMulti split wider requests into blocks of this size.
const MaxRHSBlock = core.MaxRHSBlock

// Report describes one doacross execution: per-phase times and aggregate
// synchronization counters.
type Report = core.Report

// AccessError reports a shared-array access that an iteration's declared
// Writes/Reads pattern does not cover, produced by runs under
// WithAccessCheck. It names the iteration, the element and the accessor.
type AccessError = core.AccessError

// AccessOp identifies the accessor behind an AccessError.
type AccessOp = core.AccessOp

// Accessors an AccessError can attribute an undeclared access to.
const (
	// AccessRead is a Load outside the declared Reads/Writes sets.
	AccessRead AccessOp = core.AccessRead
	// AccessReadNew is a LoadNew of an element the iteration does not write.
	AccessReadNew AccessOp = core.AccessReadNew
	// AccessWrite is a Store outside the declared Writes set.
	AccessWrite AccessOp = core.AccessWrite
)

// Trace is the per-iteration execution record collected under WithTrace.
type Trace = core.Trace

// IterTrace is one iteration's entry in a Trace.
type IterTrace = core.IterTrace

// LinearSubscript describes a left-hand-side subscript a(i) = C*i + D, the
// Section 2.3 special case that needs no inspector (see Runtime.RunLinear).
type LinearSubscript = core.LinearSubscript

// Policy selects how loop positions are assigned to workers.
type Policy = sched.Policy

// Scheduling policies.
const (
	// Block assigns contiguous position ranges to each worker.
	Block Policy = sched.Block
	// Cyclic assigns positions round robin.
	Cyclic Policy = sched.Cyclic
	// Dynamic self-schedules: workers repeatedly claim the next chunk.
	Dynamic Policy = sched.Dynamic
)

// ExecutorKind selects the execution strategy: how run-time dependencies are
// enforced during the executor phase.
type ExecutorKind = core.ExecutorKind

// Execution strategies.
const (
	// Doacross is the paper's flag-based busy-wait doacross (the default):
	// iterations start in schedule order and reads of not-yet-produced
	// elements wait on per-element ready flags. It pipelines across
	// wavefronts at the cost of per-read flag checks.
	Doacross ExecutorKind = core.ExecDoacross
	// Wavefront pre-schedules execution: the inspector builds the true
	// dependency graph, decomposes it into wavefront levels, and each level
	// runs as a barrier-separated doall — no flags, no busy waits. The
	// decomposition and its static schedule are cached across runs on the
	// same runtime (keyed by the loop's access pattern), so repeated solves
	// inspect once. Requires Loop.Reads and natural order (no WithOrder).
	Wavefront ExecutorKind = core.ExecWavefront
	// WavefrontDynamic is the wavefront execution with dynamic within-level
	// assignment: the same cached decomposition as Wavefront, but inside
	// each level the workers self-schedule chunks out of the level's member
	// list (at the WithChunk granularity) instead of running a static
	// schedule. One contended atomic per chunk claim buys within-level load
	// balance: a level with one hot iteration no longer stalls the barrier
	// behind whichever worker the static schedule dealt it to. Same
	// requirements as Wavefront (Loop.Reads, no WithOrder).
	WavefrontDynamic ExecutorKind = core.ExecWavefrontDynamic
	// Auto inspects the loop once through the same cache and picks the
	// strategy with a calibrated cost model: the inspected dependency
	// structure (edges, levels, schedule rounds, within-level read
	// imbalance, claim counts) is priced with measured barrier, flag-check
	// and chunk-claim costs — supplied through WithAutoCosts, or
	// self-calibrated once per runtime by micro-timing the primitives on
	// the live worker pool — and the predicted-cheapest of the three
	// executors runs. The coefficients and all predictions are reported in
	// Report.
	Auto ExecutorKind = core.ExecAuto
)

// AutoCosts are the coefficients of the Auto selection's cost model: the
// cost of one level-barrier rendezvous, of one flag-table operation, of one
// dynamic chunk claim, and an optional per-iteration work estimate. Zero
// value means self-calibrate; see WithAutoCosts and the core documentation
// of the model.
type AutoCosts = core.AutoCosts

// TuningOptions configures the online self-tuning Auto selection; see
// WithOnlineTuning. The zero value of every field means its default.
type TuningOptions = core.TuningOptions

// TuningSnapshot is a point-in-time copy of a runtime's online-tuning state;
// see Runtime.TuningSnapshot.
type TuningSnapshot = core.TuningSnapshot

// TuningPlan is one plan's calibration in a TuningSnapshot.
type TuningPlan = core.TuningPlan

// TuningArm is one executor's observation summary in a TuningPlan.
type TuningArm = core.TuningArm

// EditSet describes an in-place mutation of a loop's access pattern for
// Runtime.RepairPlans: the iterations whose Writes/Reads results changed,
// plus any data elements no longer written by anyone. See WithEdits for the
// common read-pattern-only case.
type EditSet = core.EditSet

// RepairReport describes what a RepairPlans call did: whether the cached
// plan was patched in place or the runtime fell back to a full invalidation,
// the dirty-cone size, the earliest perturbed level, and the repair time.
type RepairReport = core.RepairReport

// WithEdits builds the EditSet for the common case where only the read
// patterns of the listed iterations changed (a triangular-solve row update:
// writes are the identity and never move).
func WithEdits(iters ...int) EditSet { return EditSet{Iters: iters} }

// InspectStats describes what the inspector learned about a loop's
// dependency structure: level count, widths, critical path, and whether the
// decomposition came from the runtime's schedule cache.
type InspectStats = core.InspectStats

// WaitStrategy selects how executors wait on unsatisfied true dependencies.
type WaitStrategy = flags.WaitStrategy

// Wait strategies.
const (
	// WaitSpin busy-waits, exactly as in the paper.
	WaitSpin WaitStrategy = flags.WaitSpin
	// WaitSpinYield busy-waits but yields to the Go scheduler between
	// polls; safe when workers exceed GOMAXPROCS.
	WaitSpinYield WaitStrategy = flags.WaitSpinYield
	// WaitNotify parks waiters and wakes them from the writer.
	WaitNotify WaitStrategy = flags.WaitNotify
)

// config accumulates the functional options behind New.
type config struct {
	opts core.Options
	err  error
}

func (c *config) fail(err error) {
	if c.err == nil {
		c.err = err
	}
}

// Option configures a Runtime built by New.
type Option func(*config)

// WithWorkers sets the number of concurrent workers (default 1).
func WithWorkers(n int) Option {
	return func(c *config) {
		if n < 1 {
			c.fail(fmt.Errorf("doacross: WithWorkers requires at least 1 worker, got %d", n))
			return
		}
		c.opts.Workers = n
	}
}

// WithPolicy selects the iteration-scheduling policy (default Block).
func WithPolicy(p Policy) Option {
	return func(c *config) {
		switch p {
		case Block, Cyclic, Dynamic:
			c.opts.Policy = p
		default:
			c.fail(fmt.Errorf("doacross: unknown scheduling policy %d", int(p)))
		}
	}
}

// WithChunk sets the chunk size used by the Dynamic policy.
func WithChunk(n int) Option {
	return func(c *config) {
		if n < 1 {
			c.fail(fmt.Errorf("doacross: WithChunk requires a positive chunk size, got %d", n))
			return
		}
		c.opts.Chunk = n
	}
}

// WithWaitStrategy selects how true-dependency waits are performed (default
// the paper's busy wait; WaitSpinYield is recommended when workers exceed
// GOMAXPROCS).
func WithWaitStrategy(s WaitStrategy) Option {
	return func(c *config) {
		switch s {
		case WaitSpin, WaitSpinYield, WaitNotify:
			c.opts.WaitStrategy = s
		default:
			c.fail(fmt.Errorf("doacross: unknown wait strategy %d", int(s)))
		}
	}
}

// WithExecutor selects the execution strategy (default Doacross, the paper's
// busy-wait construct). Wavefront switches to pre-scheduled level-set
// execution — the inspector's dependency graph decomposed into
// barrier-separated doall levels, with the decomposition and its static
// schedule cached across runs — WavefrontDynamic runs the same levels with
// dynamic within-level self-scheduling (absorbing per-level cost variance at
// the price of one claim per chunk), and Auto picks per loop from the
// inspected graph shape. Both wavefront executors require the loop to
// declare Reads covering every element the body may Load (see
// LoopBuilder.Reads) and are incompatible with WithOrder (they derive their
// own level order); Auto falls back to Doacross in both cases. Both tiers of
// the schedule cache assume a Loop value's access pattern never changes;
// build a fresh Loop when the pattern does.
func WithExecutor(k ExecutorKind) Option {
	return func(c *config) {
		switch k {
		case Doacross, Wavefront, WavefrontDynamic, Auto:
			c.opts.Executor = k
		default:
			c.fail(fmt.Errorf("doacross: unknown executor kind %d", int(k)))
		}
	}
}

// WithAutoCosts fixes the Auto selection's cost-model coefficients instead
// of the per-runtime self-calibration probe: BarrierNs is the cost of one
// level-barrier rendezvous at the runtime's worker count, FlagCheckNs the
// cost of one flag-table operation, ClaimNs the cost of one dynamic chunk
// claim (zero excludes the dynamic executor from the comparison), and IterNs
// an optional estimate of one iteration's useful work (zero compares pure
// synchronization overheads). Only the ratios matter. Supplying the
// coefficients makes WithExecutor(Auto) deterministic across hosts — tests
// and simulator-calibrated deployments want that; leave it unset to let the
// runtime measure its own barrier, flag-check and claim costs once on its
// live pool.
func WithAutoCosts(c AutoCosts) Option {
	return func(cf *config) {
		if c.BarrierNs <= 0 || c.FlagCheckNs <= 0 || c.ClaimNs < 0 || c.IterNs < 0 {
			cf.fail(fmt.Errorf("doacross: WithAutoCosts requires positive BarrierNs and FlagCheckNs (and non-negative ClaimNs and IterNs), got %+v", c))
			return
		}
		cf.opts.AutoCosts = c
	}
}

// WithOnlineTuning enables measured-feedback calibration of the Auto
// selection: every completed Auto run feeds its measured executor-phase time
// back into a per-plan-fingerprint calibration that smooths the observations
// (EMA at o.Alpha), back-solves the cost-model coefficients toward what the
// measurements imply (folding at o.Blend, the per-iteration work term first),
// and decides subsequent runs epsilon-greedily (o.Epsilon) — preferring the
// measured-fastest executor but occasionally re-sampling a less-observed one,
// so a wrong initial pick cannot lock in. The exploration RNG is seeded
// (o.Seed), making decision sequences reproducible run for run.
//
// o.InitialCosts seeds the calibration instead of the self-calibration probe;
// unlike WithAutoCosts it is a starting point the feedback corrects, not a
// pin. Combining WithOnlineTuning with WithAutoCosts is allowed and freezes
// the tuner: pinned coefficients declare the model known, so no feedback is
// recorded and the tuner state never changes. Off by default; when off, the
// only per-run cost of the machinery is a nil test. Reports of tuned runs
// stamp Report.TunedCosts and Report.Explored, and the accumulated state is
// observable through Runtime.TuningSnapshot and a metrics sink implementing
// TuningSink.
func WithOnlineTuning(o TuningOptions) Option {
	return func(c *config) {
		if o.Alpha < 0 || o.Alpha > 1 {
			c.fail(fmt.Errorf("doacross: WithOnlineTuning requires Alpha in [0, 1], got %v", o.Alpha))
			return
		}
		if o.Blend < 0 || o.Blend > 1 {
			c.fail(fmt.Errorf("doacross: WithOnlineTuning requires Blend in [0, 1], got %v", o.Blend))
			return
		}
		if o.Epsilon > 1 {
			c.fail(fmt.Errorf("doacross: WithOnlineTuning requires Epsilon at most 1 (negative disables exploration), got %v", o.Epsilon))
			return
		}
		if ic := o.InitialCosts; ic != (AutoCosts{}) && (ic.BarrierNs <= 0 || ic.FlagCheckNs <= 0 || ic.ClaimNs < 0 || ic.IterNs < 0) {
			c.fail(fmt.Errorf("doacross: WithOnlineTuning InitialCosts require positive BarrierNs and FlagCheckNs (and non-negative ClaimNs and IterNs), got %+v", ic))
			return
		}
		c.opts.Tuning = &o
	}
}

// WithOrder sets the execution order produced by a reordering transform:
// position k of the parallel loop executes original iteration order[k]. The
// order must be a permutation of 0..N-1 of the loop the runtime will run,
// and must respect all true dependencies.
func WithOrder(order []int) Option {
	return func(c *config) {
		if order != nil && !isPermutation(order) {
			c.fail(fmt.Errorf("doacross: WithOrder requires a permutation of 0..%d", len(order)-1))
			return
		}
		c.opts.Order = order
	}
}

// isPermutation reports whether order contains every value 0..len-1 once.
func isPermutation(order []int) bool {
	seen := make([]bool, len(order))
	for _, v := range order {
		if v < 0 || v >= len(order) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// WithTrace records a per-iteration execution trace, retrievable through
// Runtime.Trace after a run. It adds two clock readings per iteration, so
// leave it off for performance-sensitive runs.
func WithTrace() Option {
	return func(c *config) { c.opts.CollectTrace = true }
}

// WithEpochTables replaces the paper's postprocessing reset protocol with
// epoch-versioned tables that reset in O(1). Results are identical; this is
// a design-choice ablation.
func WithEpochTables() Option {
	return func(c *config) { c.opts.UseEpochTables = true }
}

// WithAccessCheck enables the declared-access sanitizer: every iteration's
// actual Values accesses (Load, LoadNew, Store) are shadow-checked against
// the pattern the loop declares through Writes and Reads, and the first
// undeclared access aborts the run with an *AccessError naming the iteration,
// the element and the accessor. Use it in tests and while bringing up a new
// loop: an under-declared pattern often runs correctly under the dynamic
// doacross executor and only races once a pre-scheduled (wavefront) executor
// trusts the declaration. The check costs a few membership probes per access
// when on and a single nil test when off, so leave it off in production runs.
func WithAccessCheck(on bool) Option {
	return func(c *config) { c.opts.AccessCheck = on }
}

// WithSpawnPerCall replaces the persistent worker pool with the pre-pool
// behaviour of spawning fresh goroutines for every phase of every run. It
// exists as the measurement baseline for the pooled path (see
// BenchmarkRunReuse); leave it off in real use.
func WithSpawnPerCall() Option {
	return func(c *config) { c.opts.SpawnPerCall = true }
}

// buildOptions folds a list of options into the internal runtime options,
// reporting the first invalid option. Cross-option conflicts are checked
// after folding, so they are caught whatever order the options appear in.
func buildOptions(opts []Option) (core.Options, error) {
	c := config{opts: core.Options{Workers: 1}}
	for _, o := range opts {
		o(&c)
	}
	if c.err == nil && c.opts.Order != nil && (c.opts.Executor == Wavefront || c.opts.Executor == WavefrontDynamic) {
		c.fail(fmt.Errorf("doacross: WithExecutor(%v) is incompatible with WithOrder (the wavefront executors derive their own level order)", c.opts.Executor))
	}
	return c.opts, c.err
}

// Runtime holds the reusable state of a preprocessed doacross: the
// inspector's scratch tables, the renaming buffer and a persistent worker
// pool. Build one Runtime per data-array length and reuse it across runs (an
// iterative driver calls Run thousands of times on one Runtime). Run,
// Inspect and InvalidatePlans may be called from multiple goroutines — they
// serialize on an internal mutex, so one run executes at a time. Close
// releases the worker pool.
type Runtime struct {
	rt *core.Runtime
}

// New creates a runtime whose scratch arrays cover data arrays of length
// dataLen, configured by the given options.
func New(dataLen int, opts ...Option) (*Runtime, error) {
	if dataLen < 0 {
		return nil, fmt.Errorf("doacross: negative data length %d", dataLen)
	}
	o, err := buildOptions(opts)
	if err != nil {
		return nil, err
	}
	return &Runtime{rt: core.NewRuntime(dataLen, o)}, nil
}

// Run executes the full preprocessed doacross — inspector, executor,
// postprocessor — on the loop, updating y in place exactly as the sequential
// loop would have, and returns a report of the execution.
//
// Run honors ctx between wavefront chunks: cancellation or an expired
// deadline aborts the run and returns ctx's error (context.Canceled or
// context.DeadlineExceeded). A loop body that returns an error (BodyErr),
// reports one through Values.Fail, or panics likewise aborts the run; the
// panic is recovered into the returned error. On any abort the remaining
// iterations are skipped, waiting iterations are released, the workers drain
// cleanly, and the runtime (including its pool) remains reusable. The
// contents of y are unspecified after a failed run.
func (r *Runtime) Run(ctx context.Context, l *Loop, y []float64) (Report, error) {
	return r.rt.RunContext(ctx, l, y)
}

// RunBlocked executes the loop with the strip-mined (blocked) doacross of
// the paper's Section 2.3: an outer sequential loop over blocks of blockSize
// iterations, each block a full preprocessed doacross. Cancellation and
// failure behave as in Run.
func (r *Runtime) RunBlocked(ctx context.Context, l *Loop, y []float64, blockSize int) (Report, error) {
	return r.rt.RunBlockedContext(ctx, l, y, blockSize)
}

// RunMulti executes the loop once per column block of ys — each ys[c] an
// independent copy of the shared array — with a single wavefront traversal
// per block applying the loop's BodyMulti to every column. The traversal's
// fixed overheads (inspector, level barriers, claim traffic) are paid once
// per block instead of once per column, which is the batched-solve speedup
// the serving front end builds on. Blocks are MaxRHSBlock columns wide; the
// Auto executor sees the block width, so its pick may differ from the
// scalar run's. Cancellation and failure behave as in Run.
func (r *Runtime) RunMulti(ctx context.Context, l *Loop, ys [][]float64) (Report, error) {
	return r.rt.RunMulti(ctx, l, ys)
}

// RunLinear executes the loop with the linear-subscript variant of Section
// 2.3: when the left-hand-side subscript is a(i) = C*i + D, the inspector
// phase is eliminated entirely and the dependency check uses the closed
// form.
func (r *Runtime) RunLinear(l *Loop, y []float64, sub LinearSubscript) (Report, error) {
	return r.rt.RunLinear(l, y, sub)
}

// RunDoall executes the loop as a doall — no dependency checks, no
// synchronization, writes applied directly to y. It is only correct for
// loops with no cross-iteration dependencies and exists as the
// zero-overhead baseline of the paper's experiments.
func (r *Runtime) RunDoall(l *Loop, y []float64) (Report, error) {
	return r.rt.RunDoall(l, y)
}

// Inspect runs only the inspector phase (the execution-time preprocessing)
// and returns the inspection statistics: the wavefront decomposition's level
// count, widths and critical path when the loop declares Reads (computed
// through — and cached in — the same schedule cache the Wavefront executor
// uses), or just the iteration count when it does not. The error is non-nil
// when a Writes/Reads closure panicked during the decomposition. It exists
// for overhead measurements and executor-selection diagnostics; Run inspects
// automatically.
func (r *Runtime) Inspect(l *Loop) (InspectStats, error) { return r.rt.Inspect(l) }

// InvalidatePlans evicts every cached wavefront plan (both the Loop
// pointer-identity memo and the structural-hash tier) by advancing the
// schedule cache's generation counter, so the next Wavefront/Auto run
// re-inspects cold. Call it after mutating a loop's index arrays in place —
// the cache otherwise assumes a Loop value's access pattern never changes
// and would silently replay the stale schedule. Safe to call concurrently
// with Run.
func (r *Runtime) InvalidatePlans() { r.rt.InvalidatePlans() }

// RepairPlans patches the cached wavefront plan of l after an in-place edit
// of its access pattern, instead of evicting everything: only the dirty cone
// — the edited iterations plus the transitive successors whose wavefront
// level moves — is recomputed, and untouched prefix levels keep their exact
// schedule. For a few edited rows of a large loop this is orders of
// magnitude cheaper than the cold re-inspect InvalidatePlans forces, which
// is what makes per-step sparsity changes (mesh refinement, ILU fill-in)
// affordable. It falls back to a full invalidation (Repaired == false, nil
// error) when no repairable plan is cached for l or when the dirty cone
// exceeds the cost model's break-even budget; either way the cache ends up
// consistent, so RepairPlans never needs to be paired with InvalidatePlans.
// The loop's next run stamps Report.PlanRepaired and Report.RepairNs. Safe
// to call concurrently with Run.
func (r *Runtime) RepairPlans(l *Loop, edits EditSet) (RepairReport, error) {
	return r.rt.RepairPlans(l, edits)
}

// TuningSnapshot returns a copy of the runtime's online-tuning state
// (WithOnlineTuning): aggregate observation counts and each tuned plan's
// calibrated coefficients and per-executor observation summaries, sorted by
// plan fingerprint. Runtimes without tuning report the zero snapshot. It
// serializes with the runtime's runs; the snapshot is owned by the caller.
func (r *Runtime) TuningSnapshot() TuningSnapshot { return r.rt.TuningSnapshot() }

// Trace returns the per-iteration trace of the most recent run when the
// runtime was built with WithTrace, or nil otherwise. The trace is owned by
// the runtime and overwritten by the next traced run.
func (r *Runtime) Trace() *Trace { return r.rt.Trace() }

// Workers reports the number of workers the runtime uses.
func (r *Runtime) Workers() int { return r.rt.Workers() }

// ScratchClean reports whether the scratch arrays are back in their pristine
// state, the paper's reuse invariant. It exists for tests and diagnostics.
func (r *Runtime) ScratchClean() bool { return r.rt.ScratchClean() }

// Close retires the runtime's worker pool. It is idempotent, and a runtime
// that is garbage collected without Close releases its workers through a
// finalizer, so forgetting Close never leaks goroutines.
func (r *Runtime) Close() { r.rt.Close() }

// RunSequential executes the loop exactly as the original sequential loop
// would, applying all writes in iteration order directly to y. It is the
// reference the doacross results are compared against. A BodyErr failure (or
// Values.Fail) stops the loop and is returned.
func RunSequential(l *Loop, y []float64) error {
	return core.RunSequential(l, y)
}

// LoopBuilder assembles a Loop description; see NewLoop.
type LoopBuilder struct {
	l Loop
}

// NewLoop starts a loop description for n iterations over a shared array of
// length dataLen. Chain Writes, Reads and Body/BodyErr, then call Build to
// validate and obtain the Loop.
func NewLoop(n, dataLen int) *LoopBuilder {
	return &LoopBuilder{l: Loop{N: n, Data: dataLen}}
}

// Writes sets the function returning the data elements written by iteration
// i (the paper's a(i); usually a single element). No element may be written
// by two different iterations.
func (b *LoopBuilder) Writes(f func(i int) []int) *LoopBuilder {
	b.l.Writes = f
	return b
}

// Reads sets the function returning the data elements iteration i may read.
// The default Doacross executor discovers reads dynamically through
// Values.Load and never consults it; analysis layers and the
// Wavefront/Auto executors do, and for them Reads must cover every element
// the body may Load (over-declaring is safe; under-declaring makes the
// pre-scheduled execution silently incorrect). Optional when only the
// Doacross executor will run the loop.
func (b *LoopBuilder) Reads(f func(i int) []int) *LoopBuilder {
	b.l.Reads = f
	return b
}

// Body sets the iteration body. All accesses to the shared array must go
// through v. Mutually exclusive with BodyErr.
func (b *LoopBuilder) Body(f func(i int, v *Values)) *LoopBuilder {
	b.l.Body = f
	return b
}

// BodyErr sets the error-returning iteration body: a non-nil return aborts
// the run and is returned from Runtime.Run. Mutually exclusive with Body.
func (b *LoopBuilder) BodyErr(f func(i int, v *Values) error) *LoopBuilder {
	b.l.BodyErr = f
	return b
}

// BodyMulti sets the column-blocked iteration body executed by
// Runtime.RunMulti: the same iteration applied to every column of a block of
// independent data arrays in one traversal. It coexists with Body/BodyErr —
// a loop carrying both runs scalar under Run and blocked under RunMulti. The
// body must perform the same element accesses in every column; reads that
// may hit the iteration's own written element must go through per-column
// LoadRow calls (see MultiValues).
func (b *LoopBuilder) BodyMulti(f func(i int, v *MultiValues)) *LoopBuilder {
	b.l.BodyMulti = f
	return b
}

// Build validates the loop description (sizes, at most one of Body/BodyErr
// and at least one body variant, no output dependencies) and returns it.
func (b *LoopBuilder) Build() (*Loop, error) {
	l := b.l
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return &l, nil
}
