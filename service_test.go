// Facade tests for the batched-serving surface: Runtime.RunMulti with a
// builder-assembled BodyMulti, Solver.SolveMulti, and the coalescing
// SolveService end to end over a real triangular factor. CI runs this file
// under -race.
package doacross_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"doacross"
	"doacross/internal/sparse"
	"doacross/internal/stencil"
)

// TestFacadeRunMulti drives a chain loop with both scalar and column-blocked
// bodies through the public builder and runtime: one traversal must produce
// the per-column sequential result for every column.
func TestFacadeRunMulti(t *testing.T) {
	const n, nrhs = 300, 9
	loop, err := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{i} }).
		Reads(func(i int) []int {
			if i == 0 {
				return nil
			}
			return []int{i - 1}
		}).
		Body(func(i int, v *doacross.Values) {
			if i == 0 {
				v.Store(0, v.Load(0)+1)
				return
			}
			v.Store(i, v.Load(i-1)+1)
		}).
		BodyMulti(func(i int, v *doacross.MultiValues) {
			out := v.Row(i)
			if i == 0 {
				for c, x := range v.LoadRow(0) {
					out[c] = x + 1
				}
				return
			}
			for c, x := range v.LoadRow(i - 1) {
				out[c] = x + 1
			}
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	rt, err := doacross.New(n, doacross.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ys := make([][]float64, nrhs)
	for c := range ys {
		ys[c] = make([]float64, n)
		ys[c][0] = float64(c) // distinct seeds keep the columns distinguishable
	}
	rep, err := rt.RunMulti(context.Background(), loop, ys)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NRHS != nrhs {
		t.Errorf("NRHS = %d, want %d", rep.NRHS, nrhs)
	}
	for c := range ys {
		for i := range ys[c] {
			if want := float64(c + i + 1); ys[c][i] != want {
				t.Fatalf("column %d: y[%d] = %v, want %v", c, i, ys[c][i], want)
			}
		}
	}
}

// TestFacadeSolveService solves many concurrent right-hand sides through the
// coalescing service over one shared solver and checks every caller gets the
// sequential answer for its own rhs.
func TestFacadeSolveService(t *testing.T) {
	l, _, err := stencil.LowerFactor(stencil.Problems[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := doacross.NewSolver(l, solverOptions(4)...)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	svc, err := doacross.NewSolveService(s, doacross.ServeOptions{Window: 200 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	const callers, perCaller = 8, 6
	var wg sync.WaitGroup
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for k := 0; k < perCaller; k++ {
				rhs := stencil.RHS(l.N, int64(100*c+k))
				want := doacross.SolveSequential(l, rhs)
				y, err := svc.Solve(context.Background(), rhs)
				if err != nil {
					t.Errorf("caller %d: %v", c, err)
					return
				}
				if d := sparse.VecMaxDiff(y, want); d > 1e-10 {
					t.Errorf("caller %d solve %d: differs from sequential by %v", c, k, d)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	st := svc.Stats()
	if st.Solves != callers*perCaller || st.Errors != 0 {
		t.Errorf("service stats: %+v", st)
	}
	if st.Batches == 0 || st.MeanBatch() < 1 {
		t.Errorf("no batches recorded: %+v", st)
	}
	svc.Close()
	if _, err := svc.Solve(context.Background(), stencil.RHS(l.N, 1)); !errors.Is(err, doacross.ErrServiceClosed) {
		t.Errorf("Solve after Close returned %v, want ErrServiceClosed", err)
	}
}
