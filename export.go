package doacross

import (
	"io"

	"doacross/internal/core"
	"doacross/internal/export"
)

// PlanSnapshot is a deep copy of one loop's cached wavefront plan — writer
// index, predecessor lists, level decomposition, static schedule and
// inspection statistics — decoupled from the runtime that built it. Obtain
// one with Runtime.PlanSnapshot, serialize it with ExportPlan.
type PlanSnapshot = core.PlanSnapshot

// PlanDoc is the versioned, self-describing wire form of a PlanSnapshot: the
// JSON document ExportPlan produces and DecodePlan reads back. Its Snapshot
// method reconstructs the PlanSnapshot (revalidating the document), and its
// DOT method renders the dependency DAG as Graphviz DOT. Encoding is
// byte-deterministic: the same plan always serializes to the same bytes.
type PlanDoc = export.Doc

// PlanSchemaVersion is the schema number stamped into every exported plan
// document; DecodePlan rejects documents with any other value.
const PlanSchemaVersion = export.SchemaVersion

// PlanSnapshot captures the wavefront plan the runtime holds (or would
// build) for l: the plan is resolved through the same two-tier schedule
// cache the Wavefront executor uses — reusing a cached plan when one
// matches, inspecting cold otherwise — and returned as a deep copy that
// stays valid after further runs, repairs or invalidations. The loop must
// declare Reads, and the runtime must not carry WithOrder. Safe to call
// concurrently with Run (it serializes on the runtime's mutex).
func (r *Runtime) PlanSnapshot(l *Loop) (*PlanSnapshot, error) {
	return r.rt.PlanSnapshot(l)
}

// ExportPlan converts a snapshot into its wire document under the given name
// (a free-form label recorded in the document, useful to identify the plan
// later). Encode it with EncodePlan.
func ExportPlan(name string, s *PlanSnapshot) *PlanDoc {
	return export.FromSnapshot(name, s)
}

// EncodePlan writes d to w as indented JSON. The bytes are deterministic:
// field order is fixed by the schema and equal plans encode identically, so
// encoded plans can be diffed, cached and committed as golden files.
func EncodePlan(w io.Writer, d *PlanDoc) error {
	return export.EncodeJSON(w, d)
}

// DecodePlan reads a plan document from r, verifying the schema version and
// the document's internal consistency (index bounds, level structure, and
// that the recorded schedule matches one rebuilt from the decomposition), so
// a hand-edited or corrupt document is rejected rather than replayed.
func DecodePlan(r io.Reader) (*PlanDoc, error) {
	return export.DecodeJSON(r)
}
