// Benchmarks regenerating the paper's evaluation, one benchmark per table or
// figure plus the DESIGN.md ablations, all driven through the public doacross
// facade.
//
//	go test -bench=. -benchmem
//
// Figure/table benchmarks come in two flavours: "live/..." runs the real
// goroutine runtime on this host (worker count = GOMAXPROCS), "simulated/..."
// replays the workload on the deterministic 16-processor machine model that
// reproduces the paper's Encore Multimax setting. The simulated benchmarks
// report the achieved parallel efficiency via custom benchmark metrics
// (eff/op), so the paper's headline numbers appear directly in the benchmark
// output.
package doacross_test

import (
	"context"
	"fmt"
	"testing"

	"doacross"
	"doacross/internal/depgraph"
	"doacross/internal/doconsider"
	"doacross/internal/experiments"
	"doacross/internal/machine"
	"doacross/internal/sched"
	"doacross/internal/stencil"
	"doacross/internal/testloop"
)

// liveWorkers is the worker count used by the live benchmarks.
var liveWorkers = experiments.DefaultLiveWorkers()

func liveOptions() []doacross.Option {
	return []doacross.Option{
		doacross.WithWorkers(liveWorkers),
		doacross.WithPolicy(doacross.Dynamic),
		doacross.WithChunk(128),
		doacross.WithWaitStrategy(doacross.WaitSpinYield),
	}
}

// newRuntime builds a facade runtime or fails the benchmark.
func newRuntime(b *testing.B, dataLen int, opts ...doacross.Option) *doacross.Runtime {
	b.Helper()
	rt, err := doacross.New(dataLen, opts...)
	if err != nil {
		b.Fatal(err)
	}
	return rt
}

// BenchmarkFigure6TestLoop regenerates Figure 6 (Section 3.1): the efficiency
// of the preprocessed doacross on the Figure 4 test loop as a function of L.
func BenchmarkFigure6TestLoop(b *testing.B) {
	// Simulated: the full paper-scale sweep at P=16.
	b.Run("simulated/full-sweep", func(b *testing.B) {
		cfg := experiments.DefaultFigure6Config()
		var last experiments.Figure6Result
		for i := 0; i < b.N; i++ {
			var err error
			last, err = experiments.RunFigure6(cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		reportFig6Metrics(b, last)
	})

	// Simulated single points for the two M values at a representative even L.
	for _, m := range []int{1, 5} {
		for _, l := range []int{1, 14} {
			name := fmt.Sprintf("simulated/M=%d/L=%d", m, l)
			b.Run(name, func(b *testing.B) {
				tc := testloop.Config{N: 10000, M: m, L: l}
				g := tc.Graph()
				rp := machine.ReadPredsFromAccess(tc.Access())
				cm := experiments.Figure6CostModel(m)
				var eff float64
				for i := 0; i < b.N; i++ {
					res, err := machine.Simulate(g, machine.Config{
						Processors: experiments.PaperProcessors,
						Policy:     sched.Cyclic,
						ReadPreds:  rp,
					}, cm)
					if err != nil {
						b.Fatal(err)
					}
					eff = res.Efficiency
				}
				b.ReportMetric(eff, "eff")
			})
		}
	}

	// Live: the real runtime on this host, sequential vs. doacross.
	ctx := context.Background()
	for _, l := range []int{1, 14} {
		tc := testloop.Config{N: 20000, M: 5, L: l}
		loop := tc.Loop()
		base := tc.InitialData()
		b.Run(fmt.Sprintf("live/sequential/L=%d", l), func(b *testing.B) {
			y := append([]float64(nil), base...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(y, base)
				if err := doacross.RunSequential(loop, y); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("live/doacross/L=%d", l), func(b *testing.B) {
			rt := newRuntime(b, loop.Data, liveOptions()...)
			defer rt.Close()
			y := append([]float64(nil), base...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(y, base)
				if _, err := rt.Run(ctx, loop, y); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func reportFig6Metrics(b *testing.B, res experiments.Figure6Result) {
	if len(res.Points) == 0 {
		return
	}
	for _, p := range res.Points {
		if p.L == 1 {
			b.ReportMetric(p.Efficiency, fmt.Sprintf("effM%dL1", p.M))
		}
		if p.L == 14 {
			b.ReportMetric(p.Efficiency, fmt.Sprintf("effM%dL14", p.M))
		}
	}
}

// BenchmarkTable1TriangularSolve regenerates Table 1 (Section 3.2): sparse
// triangular solves on the five test systems.
func BenchmarkTable1TriangularSolve(b *testing.B) {
	// Simulated: the full five-problem table at P=16.
	b.Run("simulated/full-table", func(b *testing.B) {
		cfg := experiments.DefaultTable1Config()
		var last experiments.Table1Result
		for i := 0; i < b.N; i++ {
			var err error
			last, err = experiments.RunTable1(cfg)
			if err != nil {
				b.Fatal(err)
			}
		}
		if len(last.Rows) > 0 {
			plainLo, plainHi, reLo, reHi := last.SpeedupSummary()
			b.ReportMetric(plainLo, "plainEffMin")
			b.ReportMetric(plainHi, "plainEffMax")
			b.ReportMetric(reLo, "reordEffMin")
			b.ReportMetric(reHi, "reordEffMax")
		}
	})

	// Live solves per problem (the two smaller systems keep bench time sane).
	solveOpts := []doacross.Option{
		doacross.WithWorkers(liveWorkers),
		doacross.WithPolicy(doacross.Dynamic),
		doacross.WithChunk(32),
		doacross.WithWaitStrategy(doacross.WaitSpinYield),
	}
	for _, prob := range []stencil.Problem{stencil.SPE2, stencil.FivePoint} {
		l, _, err := stencil.LowerFactor(prob, 1)
		if err != nil {
			b.Fatal(err)
		}
		rhs := stencil.RHS(l.N, 7)
		b.Run(fmt.Sprintf("live/sequential/%v", prob), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				doacross.SolveSequential(l, rhs)
			}
		})
		b.Run(fmt.Sprintf("live/doacross/%v", prob), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := doacross.SolveTriangular(doacross.SolverDoacross, l, rhs, solveOpts...); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("live/doacross-reordered/%v", prob), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := doacross.SolveTriangular(doacross.SolverReordered, l, rhs, solveOpts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOverhead measures Ablation A: the preprocessing,
// postprocessing and dependency-check overhead on a dependency-free loop
// (odd L), the decomposition behind the paper's odd-L efficiency floors.
func BenchmarkAblationOverhead(b *testing.B) {
	b.Run("simulated", func(b *testing.B) {
		var rows []experiments.OverheadRow
		for i := 0; i < b.N; i++ {
			var err error
			rows, err = experiments.RunOverheadAblation(10000, []int{1, 5}, experiments.PaperProcessors)
			if err != nil {
				b.Fatal(err)
			}
		}
		if len(rows) == 2 {
			b.ReportMetric(rows[0].FullDoacrossEff, "floorM1")
			b.ReportMetric(rows[1].FullDoacrossEff, "floorM5")
		}
	})
	// Live: isolate the inspector and postprocessor phases of the runtime.
	ctx := context.Background()
	tc := testloop.Config{N: 50000, M: 1, L: 1}
	loop := tc.Loop()
	b.Run("live/inspector", func(b *testing.B) {
		rt := newRuntime(b, loop.Data, liveOptions()...)
		defer rt.Close()
		for i := 0; i < b.N; i++ {
			rt.Inspect(loop)
		}
	})
	b.Run("live/full-doacross", func(b *testing.B) {
		rt := newRuntime(b, loop.Data, liveOptions()...)
		defer rt.Close()
		y := tc.InitialData()
		for i := 0; i < b.N; i++ {
			if _, err := rt.Run(ctx, loop, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("live/doall-baseline", func(b *testing.B) {
		rt := newRuntime(b, loop.Data, liveOptions()...)
		defer rt.Close()
		y := tc.InitialData()
		for i := 0; i < b.N; i++ {
			if _, err := rt.RunDoall(loop, y); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBlocked measures Ablation B: the strip-mined (blocked)
// doacross of Section 2.3 across block sizes, live and simulated.
func BenchmarkAblationBlocked(b *testing.B) {
	tc := testloop.Config{N: 20000, M: 1, L: 12}
	b.Run("simulated", func(b *testing.B) {
		var rows []experiments.BlockedRow
		for i := 0; i < b.N; i++ {
			var err error
			rows, err = experiments.RunBlockedAblation(tc, []int{250, 1000, 5000, 20000}, experiments.PaperProcessors)
			if err != nil {
				b.Fatal(err)
			}
		}
		if len(rows) > 0 {
			b.ReportMetric(rows[0].Efficiency, "effSmallBlock")
			b.ReportMetric(rows[len(rows)-1].Efficiency, "effFullBlock")
		}
	})
	ctx := context.Background()
	loop := tc.Loop()
	base := tc.InitialData()
	for _, block := range []int{1000, 20000} {
		b.Run(fmt.Sprintf("live/block=%d", block), func(b *testing.B) {
			rt := newRuntime(b, loop.Data, liveOptions()...)
			defer rt.Close()
			y := append([]float64(nil), base...)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(y, base)
				if _, err := rt.RunBlocked(ctx, loop, y, block); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationLinearSubscript measures Ablation C: the inspector-based
// doacross against the linear-subscript variant that eliminates the
// preprocessing phase (Section 2.3).
func BenchmarkAblationLinearSubscript(b *testing.B) {
	ctx := context.Background()
	tc := testloop.Config{N: 20000, M: 1, L: 12}
	loop := tc.Loop()
	base := tc.InitialData()
	b.Run("live/inspector", func(b *testing.B) {
		rt := newRuntime(b, loop.Data, liveOptions()...)
		defer rt.Close()
		y := append([]float64(nil), base...)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(y, base)
			if _, err := rt.Run(ctx, loop, y); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("live/linear-subscript", func(b *testing.B) {
		rt := newRuntime(b, loop.Data, liveOptions()...)
		defer rt.Close()
		y := append([]float64(nil), base...)
		sub := tc.Subscript()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			copy(y, base)
			if _, err := rt.RunLinear(loop, y, sub); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("simulated", func(b *testing.B) {
		var rows []experiments.LinearRow
		for i := 0; i < b.N; i++ {
			var err error
			rows, err = experiments.RunLinearAblation(10000, 1, []int{12}, experiments.PaperProcessors)
			if err != nil {
				b.Fatal(err)
			}
		}
		if len(rows) == 1 {
			b.ReportMetric(rows[0].InspectorEff, "inspectorEff")
			b.ReportMetric(rows[0].LinearEff, "linearEff")
		}
	})
}

// BenchmarkAblationSyncStrategy measures Ablation D: the cost of the
// synchronization strategy (the paper's busy wait vs. a yielding spin vs.
// parked notification vs. epoch-versioned tables) on the live runtime.
func BenchmarkAblationSyncStrategy(b *testing.B) {
	l, _, err := stencil.LowerFactor(stencil.FivePoint, 1)
	if err != nil {
		b.Fatal(err)
	}
	rhs := stencil.RHS(l.N, 7)
	common := []doacross.Option{
		doacross.WithWorkers(liveWorkers),
		doacross.WithPolicy(doacross.Dynamic),
		doacross.WithChunk(32),
	}
	cases := []struct {
		name string
		opts []doacross.Option
	}{
		{"spin-yield", append(common[:len(common):len(common)], doacross.WithWaitStrategy(doacross.WaitSpinYield))},
		{"notify", append(common[:len(common):len(common)], doacross.WithWaitStrategy(doacross.WaitNotify))},
		{"spin-yield-epoch", append(common[:len(common):len(common)], doacross.WithWaitStrategy(doacross.WaitSpinYield), doacross.WithEpochTables())},
	}
	for _, tc := range cases {
		b.Run("live/"+tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := doacross.SolveTriangular(doacross.SolverDoacross, l, rhs, tc.opts...); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationOrdering measures Ablation E: doconsider ordering
// strategies on the Table 1 dependency graphs (simulated at P=16).
func BenchmarkAblationOrdering(b *testing.B) {
	b.Run("simulated/5-PT", func(b *testing.B) {
		var rows []experiments.OrderingRow
		for i := 0; i < b.N; i++ {
			var err error
			rows, err = experiments.RunOrderingAblation([]stencil.Problem{stencil.FivePoint}, experiments.PaperProcessors, 1)
			if err != nil {
				b.Fatal(err)
			}
		}
		for _, r := range rows {
			b.ReportMetric(r.Efficiency, "eff_"+r.Strategy.String())
		}
	})
	// The planning cost itself (building the reordering) matters for a
	// runtime system; measure it live.
	l, _, err := stencil.LowerFactor(stencil.SevenPoint, 1)
	if err != nil {
		b.Fatal(err)
	}
	g := doacross.TrisolveGraph(l)
	for _, s := range doconsider.Strategies {
		b.Run("live/plan/"+s.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				doconsider.NewPlan(g, s)
			}
		})
	}
}

// BenchmarkProcessorSweep measures Ablation F (extension): the simulated
// efficiency of the doacross triangular solve as the machine size grows.
func BenchmarkProcessorSweep(b *testing.B) {
	b.Run("simulated/trisolve-5PT", func(b *testing.B) {
		var res experiments.SweepResult
		for i := 0; i < b.N; i++ {
			var err error
			res, err = experiments.RunProcessorSweepTrisolve(stencil.FivePoint, experiments.DefaultSweepProcessors, 1)
			if err != nil {
				b.Fatal(err)
			}
		}
		for _, p := range res.Points {
			if p.Processors == 16 || p.Processors == 64 {
				b.ReportMetric(p.ReorderedEff, fmt.Sprintf("reordEffP%d", p.Processors))
			}
		}
	})
}

// BenchmarkExecutorComparison measures the pluggable execution strategies
// against each other on the paper's loop shapes: the Figure 4 test loop (even
// L, so real cross-iteration dependencies) and the Table 1 triangular solves.
// Doacross pays per-read flag checks and busy waits; wavefront pays one
// barrier per level off a cached pre-built schedule; auto inspects and picks.
func BenchmarkExecutorComparison(b *testing.B) {
	ctx := context.Background()
	executors := []struct {
		name string
		kind doacross.ExecutorKind
	}{
		{"doacross", doacross.Doacross},
		{"wavefront", doacross.Wavefront},
		{"wavefront-dynamic", doacross.WavefrontDynamic},
		{"auto", doacross.Auto},
	}

	for _, l := range []int{2, 14} {
		tc := testloop.Config{N: 20000, M: 5, L: l}
		loop := tc.Loop()
		base := tc.InitialData()
		for _, ex := range executors {
			b.Run(fmt.Sprintf("live/figure4/L=%d/%s", l, ex.name), func(b *testing.B) {
				rt := newRuntime(b, loop.Data,
					doacross.WithWorkers(liveWorkers),
					doacross.WithWaitStrategy(doacross.WaitSpinYield),
					doacross.WithExecutor(ex.kind),
				)
				defer rt.Close()
				y := append([]float64(nil), base...)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					copy(y, base)
					if _, err := rt.Run(ctx, loop, y); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}

	for _, prob := range []stencil.Problem{stencil.SPE2, stencil.FivePoint} {
		l, _, err := stencil.LowerFactor(prob, 1)
		if err != nil {
			b.Fatal(err)
		}
		rhs := stencil.RHS(l.N, 7)
		for _, ex := range executors {
			b.Run(fmt.Sprintf("live/trisolve/%v/%s", prob, ex.name), func(b *testing.B) {
				solver, err := doacross.NewSolver(l,
					doacross.WithWorkers(liveWorkers),
					doacross.WithPolicy(doacross.Dynamic),
					doacross.WithChunk(32),
					doacross.WithWaitStrategy(doacross.WaitSpinYield),
					doacross.WithExecutor(ex.kind),
				)
				if err != nil {
					b.Fatal(err)
				}
				defer solver.Close()
				y := make([]float64, l.N)
				var waits int64
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					_, rep, err := solver.Solve(rhs, y)
					if err != nil {
						b.Fatal(err)
					}
					waits = rep.WaitPolls
				}
				b.ReportMetric(float64(waits), "waits/op")
			})
		}
	}
}

// BenchmarkDynamicWavefront isolates the static-vs-dynamic within-level
// trade on the two regimes the cost model separates: "uniform" levels (every
// iteration reads one element — the claim traffic is pure overhead, static
// should win) and "skewed" levels (one hot iteration per level reads half
// the previous level — the static schedule serializes each level behind the
// hot worker, dynamic reclaims the imbalance). The loop shapes match the
// skewed acceptance tests; see also the machine-model crossover tests for
// the simulated counterpart.
func BenchmarkDynamicWavefront(b *testing.B) {
	ctx := context.Background()
	executors := []struct {
		name string
		kind doacross.ExecutorKind
	}{
		{"wavefront", doacross.Wavefront},
		{"wavefront-dynamic", doacross.WavefrontDynamic},
	}
	for _, shape := range []struct {
		name     string
		hotReads int
	}{
		{"uniform", 0},
		{"skewed", 48},
	} {
		loop, y0, err := skewedLevelLoop(64, 64, shape.hotReads)
		if err != nil {
			b.Fatal(err)
		}
		for _, ex := range executors {
			b.Run(fmt.Sprintf("live/%s/%s", shape.name, ex.name), func(b *testing.B) {
				rt := newRuntime(b, loop.Data,
					doacross.WithWorkers(liveWorkers),
					doacross.WithWaitStrategy(doacross.WaitSpinYield),
					doacross.WithExecutor(ex.kind),
				)
				defer rt.Close()
				y := append([]float64(nil), y0...)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					copy(y, y0)
					if _, err := rt.Run(ctx, loop, y); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkScheduleCache measures what the wavefront schedule cache
// amortizes: "cold" builds a fresh solver per solve (every run pays the full
// inspection: graph build, level decomposition, schedule materialization),
// "warm" reuses one solver so every run after the first is a cache hit. The
// preNs/op metric isolates the inspection component — on warm runs it is the
// cost of the pointer-identity memo lookup, i.e. effectively zero.
func BenchmarkScheduleCache(b *testing.B) {
	l, _, err := stencil.LowerFactor(stencil.FivePoint, 1)
	if err != nil {
		b.Fatal(err)
	}
	rhs := stencil.RHS(l.N, 7)
	opts := []doacross.Option{
		doacross.WithWorkers(liveWorkers),
		doacross.WithWaitStrategy(doacross.WaitSpinYield),
		doacross.WithExecutor(doacross.Wavefront),
	}
	b.Run("cold", func(b *testing.B) {
		var pre int64
		for i := 0; i < b.N; i++ {
			solver, err := doacross.NewSolver(l, opts...)
			if err != nil {
				b.Fatal(err)
			}
			_, rep, err := solver.Solve(rhs, nil)
			if err != nil {
				b.Fatal(err)
			}
			if rep.InspectCached {
				b.Fatal("fresh solver hit a cache")
			}
			pre += rep.PreTime.Nanoseconds()
			solver.Close()
		}
		b.ReportMetric(float64(pre)/float64(b.N), "preNs/op")
	})
	b.Run("warm", func(b *testing.B) {
		solver, err := doacross.NewSolver(l, opts...)
		if err != nil {
			b.Fatal(err)
		}
		defer solver.Close()
		y := make([]float64, l.N)
		if _, _, err := solver.Solve(rhs, y); err != nil { // pay the cold inspect outside the timer
			b.Fatal(err)
		}
		var pre int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, rep, err := solver.Solve(rhs, y)
			if err != nil {
				b.Fatal(err)
			}
			if !rep.InspectCached {
				b.Fatal("warm solve missed the cache")
			}
			pre += rep.PreTime.Nanoseconds()
		}
		b.ReportMetric(float64(pre)/float64(b.N), "preNs/op")
	})
}

// BenchmarkRunReuse measures the per-Run overhead the persistent worker pool
// eliminates for iterative drivers: repeated runs of a small loop on one
// reused runtime, pooled (workers started once, one fused phase submission
// per Run) vs. spawn-per-call (the pre-pool behaviour of spawning fresh
// goroutines for every inspector, executor and postprocessor phase of every
// Run). BiCGSTAB in internal/krylov calls Run twice per solver iteration, so
// this difference is paid thousands of times per solve.
func BenchmarkRunReuse(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{1000, 10000} {
		tc := testloop.Config{N: n, M: 1, L: 2}
		loop := tc.Loop()
		base := tc.InitialData()
		for _, p := range []int{2, 4, 8} {
			for _, mode := range []struct {
				name  string
				spawn bool
			}{{"pooled", false}, {"spawn", true}} {
				b.Run(fmt.Sprintf("N=%d/P=%d/%s", n, p, mode.name), func(b *testing.B) {
					opts := []doacross.Option{
						doacross.WithWorkers(p),
						doacross.WithPolicy(doacross.Block),
						doacross.WithWaitStrategy(doacross.WaitSpinYield),
					}
					if mode.spawn {
						opts = append(opts, doacross.WithSpawnPerCall())
					}
					rt := newRuntime(b, loop.Data, opts...)
					defer rt.Close()
					y := append([]float64(nil), base...)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						copy(y, base)
						if _, err := rt.Run(ctx, loop, y); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkSubstrates measures the supporting subsystems on their own:
// dependency-graph construction, the inspector, ILU(0) factorization and the
// discrete-event simulator. These are not paper results but bound the
// runtime cost of using the library.
func BenchmarkSubstrates(b *testing.B) {
	tc := testloop.Config{N: 20000, M: 5, L: 12}
	b.Run("depgraph/build", func(b *testing.B) {
		acc := tc.Access()
		for i := 0; i < b.N; i++ {
			depgraph.Build(acc)
		}
	})
	b.Run("stencil/ilu0-5pt", func(b *testing.B) {
		a, err := stencil.FivePointGrid(63, 63)
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < b.N; i++ {
			if _, _, err := stencil.LowerFactor(stencil.FivePoint, 1); err != nil {
				b.Fatal(err)
			}
		}
		_ = a
	})
	b.Run("machine/simulate-7pt", func(b *testing.B) {
		l, _, err := stencil.LowerFactor(stencil.SevenPoint, 1)
		if err != nil {
			b.Fatal(err)
		}
		g := doacross.TrisolveGraph(l)
		cm := experiments.TrisolveCostModel(l)
		for i := 0; i < b.N; i++ {
			if _, err := machine.Simulate(g, machine.Config{Processors: 16, Policy: sched.Cyclic}, cm); err != nil {
				b.Fatal(err)
			}
		}
	})
}
