module doacross

go 1.24
