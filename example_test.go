package doacross_test

import (
	"context"
	"fmt"

	"doacross"
)

// Example parallelizes a chain of true dependencies — y[i] = y[i-1] + 1 —
// whose structure the runtime discovers at execution time. The doacross
// produces exactly the sequential result.
func Example() {
	const n = 8

	loop, err := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{i} }).
		Body(func(i int, v *doacross.Values) {
			if i == 0 {
				v.Store(0, 1)
				return
			}
			// Load performs the execution-time dependency check: it waits
			// for iteration i-1's value, because i-1 writes element i-1.
			v.Store(i, v.Load(i-1)+1)
		}).
		Build()
	if err != nil {
		panic(err)
	}

	rt, err := doacross.New(n,
		doacross.WithWorkers(4),
		doacross.WithWaitStrategy(doacross.WaitSpinYield),
	)
	if err != nil {
		panic(err)
	}
	defer rt.Close()

	y := make([]float64, n)
	if _, err := rt.Run(context.Background(), loop, y); err != nil {
		panic(err)
	}
	fmt.Println(y)
	// Output: [1 2 3 4 5 6 7 8]
}
