// Acceptance suite for the online self-tuning Auto selection
// (WithOnlineTuning): convergence from deliberately wrong seed coefficients
// on a loop with a decisive executor winner and on the paper's SPE2
// triangular solve, post-run report stamping, concurrent-feedback
// reconciliation against the metrics collector, and the WithAutoCosts freeze.
package doacross_test

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"doacross"
	"doacross/internal/machine"
	"doacross/internal/stencil"
	"doacross/internal/tune"
)

// tuningChainLoop builds a pure dependency chain: iteration i writes element
// i and reads element i-1. A chain is the most lopsided executor comparison
// the runtime has — the busy-wait doacross pipelines it with one flag wait
// per iteration, while the wavefront executor decomposes it into N unit-width
// levels and pays N full barriers — so the truly fastest executor is
// doacross by a wide margin at any realistic cost ratio.
func tuningChainLoop(n int) *doacross.Loop {
	return &doacross.Loop{
		N:      n,
		Data:   n,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			if i == 0 {
				return nil
			}
			return []int{i - 1}
		},
		Body: func(i int, v *doacross.Values) {
			x := 1.0
			if i > 0 {
				x = v.Load(i-1) + 1
			}
			v.Store(i, x)
		},
	}
}

// misledToward returns seed coefficients whose model prediction prefers the
// named executor on any chain-shaped loop, by pricing the other executor's
// synchronization primitive catastrophically. No claim coefficient: the
// dynamic arm is excluded, isolating the two-way flip.
func misledToward(executor string) doacross.AutoCosts {
	if executor == "doacross" {
		return doacross.AutoCosts{BarrierNs: 1e6, FlagCheckNs: 0.01, IterNs: 100}
	}
	return doacross.AutoCosts{BarrierNs: 0.01, FlagCheckNs: 5000, IterNs: 100}
}

// TestOnlineTuningConvergesOnChain is the convergence acceptance test on the
// decisive shape: a long dependency chain, where the busy-wait doacross and
// the barrier-per-level wavefront are typically orders of magnitude apart
// (which of the two wins depends on how the host schedules spinning
// workers, so the test measures its own ground truth first). Seeded with
// coefficients that make the model pick the measured-WORST executor, the
// tuner must flip to the measured-best one within half the run budget and
// stay there for every later greedy decision. The exploration seed is fixed,
// so which runs explore is deterministic; measured times only decide how
// good each executor looks, and on a chain that ordering is not close.
func TestOnlineTuningConvergesOnChain(t *testing.T) {
	const n, workers, truthReps, runs = 512, 4, 3, 30
	l := tuningChainLoop(n)

	// Ground truth: best executor-phase time of each contested executor.
	truthOf := func(kind doacross.ExecutorKind) int64 {
		rt, err := doacross.New(n, doacross.WithWorkers(workers), doacross.WithExecutor(kind))
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		y := make([]float64, n)
		best := int64(0)
		for rep := 0; rep < truthReps; rep++ {
			r, err := rt.Run(context.Background(), l, y)
			if err != nil {
				t.Fatal(err)
			}
			if ns := r.ExecTime.Nanoseconds(); best == 0 || ns < best {
				best = ns
			}
		}
		return best
	}
	daNs, wfNs := truthOf(doacross.Doacross), truthOf(doacross.Wavefront)
	bestName, worstName := "doacross", "wavefront"
	if wfNs < daNs {
		bestName, worstName = "wavefront", "doacross"
	}
	lo, hi := daNs, wfNs
	if hi < lo {
		lo, hi = hi, lo
	}
	t.Logf("chain ground truth (best of %d): doacross=%v wavefront=%v", truthReps,
		time.Duration(daNs), time.Duration(wfNs))
	if hi < 3*lo {
		t.Skipf("executor margin on this host is only %.2fx; the flip assertion needs a decisive winner", float64(hi)/float64(lo))
	}

	// Seed 5 explores at runs 3, 20 and 27 (one Float64 draw per decision):
	// run 0 is greedy — the misled model's pick — and the first exploration
	// arrives early enough to escape the wrong arm's lock-in within budget.
	// (Lock-in is real: once the mispriced arm has a measured average, the
	// other arm's model prediction — computed from the same wrong
	// coefficients — looks even worse, so greedy alone would never leave.)
	rt, err := doacross.New(n,
		doacross.WithWorkers(workers),
		doacross.WithExecutor(doacross.Auto),
		doacross.WithOnlineTuning(doacross.TuningOptions{
			InitialCosts: misledToward(worstName),
			Seed:         5,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	y := make([]float64, n)

	type decision struct {
		executor string
		explored bool
	}
	var hist []decision
	for r := 0; r < runs; r++ {
		rep, err := rt.Run(context.Background(), l, y)
		if err != nil {
			t.Fatal(err)
		}
		hist = append(hist, decision{rep.Executor, rep.Explored})
	}

	if hist[0].explored {
		t.Fatalf("run 0 explored; the seed is meant to make it a greedy decision")
	}
	if hist[0].executor != worstName {
		t.Fatalf("run 0 picked %q; the wrong seed coefficients should mislead the model into %q", hist[0].executor, worstName)
	}

	// Converged-at: the first run from which every greedy decision picked
	// the measured-best executor (explorations are deliberate detours and
	// excluded).
	converged := -1
	for i := len(hist) - 1; i >= 0; i-- {
		if !hist[i].explored && hist[i].executor != bestName {
			break
		}
		if !hist[i].explored {
			converged = i
		}
	}
	if converged < 0 {
		t.Fatalf("tuner never settled on %q: %+v", bestName, hist)
	}
	if converged > runs/2 {
		t.Errorf("tuner settled only at run %d of %d", converged, runs)
	}
	greedyAfter := 0
	for _, d := range hist[converged:] {
		if !d.explored {
			greedyAfter++
		}
	}
	if greedyAfter < 5 {
		t.Errorf("only %d greedy runs after convergence; the stay-converged evidence is too thin", greedyAfter)
	}

	snap := rt.TuningSnapshot()
	if len(snap.Plans) != 1 {
		t.Fatalf("tuner tracks %d plans, want 1", len(snap.Plans))
	}
	p := snap.Plans[0]
	if p.Doacross.Observations == 0 || p.Wavefront.Observations == 0 {
		t.Fatalf("both contested arms should have been measured: %+v", p)
	}
	emaBest, emaWorst := p.Doacross.EMANs, p.Wavefront.EMANs
	if bestName == "wavefront" {
		emaBest, emaWorst = emaWorst, emaBest
	}
	if emaBest >= emaWorst {
		t.Errorf("measured averages contradict the ground truth: %s %v >= %s %v",
			bestName, emaBest, worstName, emaWorst)
	}

	// The simulator predicts the same trajectory shape: feeding the measured
	// averages in as ground truth, SimulateTuning with the same seed and seed
	// coefficients must converge to the same arm within the same budget.
	st, err := rt.Inspect(l)
	if err != nil {
		t.Fatal(err)
	}
	truth := machine.TuningTruth{DoacrossNs: p.Doacross.EMANs, WavefrontNs: p.Wavefront.EMANs}
	traj := machine.SimulateTuning(truth, tune.Coeffs(misledToward(worstName)),
		tune.Stats{
			Iterations: st.Iterations, Edges: st.Edges, StallWeight: st.StallWeight,
			Levels: st.Levels, CriticalPathLen: st.CriticalPathLen,
			ScheduleRounds: st.ScheduleRounds, ReadImbalance: st.ReadImbalance,
			DynamicClaims: st.DynamicClaims,
		}, workers, 1, runs, tune.Options{Seed: 5})
	wantArm := tune.Doacross
	if bestName == "wavefront" {
		wantArm = tune.Wavefront
	}
	if best := truth.BestArm(); best != wantArm {
		t.Fatalf("simulator best arm = %d under the measured truth, want %d", best, wantArm)
	}
	if traj.ConvergedAt < 0 || traj.ConvergedAt > runs/2 {
		t.Errorf("simulator trajectory converged at %d, live tuner at %d — they should agree within the budget",
			traj.ConvergedAt, converged)
	}
}

// TestOnlineTuningSPE2Trisolve is the convergence acceptance test on the
// paper's workload: forward substitution on the SPE2 factor. The executor
// margins on SPE2 are thin and machine-dependent, so the test measures its
// own ground truth — each executor's best time over fixed-executor runs —
// and makes relaxed assertions: the tuned runtime must explore beyond its
// deliberately mispriced seed, and whatever executor it settles on must have
// a measured average within 1.5x of the truly fastest executor's time (a
// tuner stuck on a catastrophic pick fails; close seconds among near-ties
// pass).
func TestOnlineTuningSPE2Trisolve(t *testing.T) {
	const workers, truthReps, runs = 2, 6, 40
	lf, _, err := stencil.LowerFactor(stencil.SPE2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rhs := stencil.RHS(lf.N, 7)
	loop, err := doacross.TrisolveLoop(lf, rhs)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth: best executor-phase time of each fixed executor.
	bestNs := map[doacross.ExecutorKind]int64{}
	for _, kind := range []doacross.ExecutorKind{doacross.Doacross, doacross.Wavefront, doacross.WavefrontDynamic} {
		rt, err := doacross.New(lf.N, doacross.WithWorkers(workers), doacross.WithExecutor(kind))
		if err != nil {
			t.Fatal(err)
		}
		y := make([]float64, lf.N)
		for rep := 0; rep < truthReps; rep++ {
			copy(y, rhs)
			r, err := rt.Run(context.Background(), loop, y)
			if err != nil {
				rt.Close()
				t.Fatal(err)
			}
			if ns := r.ExecTime.Nanoseconds(); bestNs[kind] == 0 || ns < bestNs[kind] {
				bestNs[kind] = ns
			}
		}
		rt.Close()
	}
	fastest := bestNs[doacross.Doacross]
	for _, ns := range bestNs {
		if ns < fastest {
			fastest = ns
		}
	}
	t.Logf("SPE2 ground truth (best of %d): doacross=%v wavefront=%v dynamic=%v",
		truthReps,
		time.Duration(bestNs[doacross.Doacross]),
		time.Duration(bestNs[doacross.Wavefront]),
		time.Duration(bestNs[doacross.WavefrontDynamic]))

	// The tuned runtime starts from coefficients that price barriers
	// catastrophically, pinning the seed pick to the busy-wait doacross;
	// measured feedback and exploration must take over from there. Seed 6
	// explores early (runs 2, 3, 8, ...), so all three arms get measured.
	rt, err := doacross.New(lf.N,
		doacross.WithWorkers(workers),
		doacross.WithExecutor(doacross.Auto),
		doacross.WithOnlineTuning(doacross.TuningOptions{
			InitialCosts: doacross.AutoCosts{BarrierNs: 1e6, FlagCheckNs: 0.01, ClaimNs: 25},
			Seed:         6,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	y := make([]float64, lf.N)
	lastGreedy := ""
	for r := 0; r < runs; r++ {
		copy(y, rhs)
		rep, err := rt.Run(context.Background(), loop, y)
		if err != nil {
			t.Fatal(err)
		}
		if r == 0 && rep.Executor != "doacross" {
			t.Fatalf("run 0 picked %q; the seed coefficients should pin it to doacross", rep.Executor)
		}
		if !rep.Explored {
			lastGreedy = rep.Executor
		}
	}
	snap := rt.TuningSnapshot()
	if len(snap.Plans) != 1 {
		t.Fatalf("tuner tracks %d plans, want 1", len(snap.Plans))
	}
	p := snap.Plans[0]
	observedArms := 0
	for _, arm := range []doacross.TuningArm{p.Doacross, p.Wavefront, p.WavefrontDynamic} {
		if arm.Observations > 0 {
			observedArms++
		}
	}
	if observedArms < 3 {
		t.Errorf("exploration measured only %d of 3 executors: %+v", observedArms, p)
	}

	settled := map[string]doacross.TuningArm{
		"doacross":          p.Doacross,
		"wavefront":         p.Wavefront,
		"wavefront-dynamic": p.WavefrontDynamic,
	}[lastGreedy]
	if settled.Observations == 0 {
		t.Fatalf("settled executor %q was never observed: %+v", lastGreedy, p)
	}
	if limit := 1.5 * float64(fastest); settled.EMANs > limit {
		t.Errorf("tuner settled on %q with measured average %v, more than 1.5x the fastest executor's %v",
			lastGreedy, time.Duration(int64(settled.EMANs)), time.Duration(fastest))
	}
}

// TestOnlineTuningRestampsPredictions is the regression test for the
// pre-run-stamping bug: a tuned run's Report.Predicted*Ns (and TunedCosts)
// must describe the post-observation model — exactly what PredictN returns
// for the report's own TunedCosts — not the coefficients the decision was
// made with. The seed's absurd per-iteration cost makes the two stampings
// orders of magnitude apart, so the old behaviour cannot pass.
func TestOnlineTuningRestampsPredictions(t *testing.T) {
	const n = 256
	seed := doacross.AutoCosts{BarrierNs: 400, FlagCheckNs: 30, ClaimNs: 25, IterNs: 1e6}
	rt, err := doacross.New(n,
		doacross.WithWorkers(2),
		doacross.WithExecutor(doacross.Auto),
		doacross.WithOnlineTuning(doacross.TuningOptions{InitialCosts: seed, Seed: 4}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	l := tuningChainLoop(n)
	y := make([]float64, n)

	var rep doacross.Report
	for r := 0; r < 3; r++ {
		if rep, err = rt.Run(context.Background(), l, y); err != nil {
			t.Fatal(err)
		}
	}
	if rep.TunedCosts == seed {
		t.Fatal("three observed runs left the tuned coefficients at the seed")
	}
	if rep.TunedCosts.IterNs >= seed.IterNs {
		t.Errorf("the absurd IterNs seed was not calibrated down: %v", rep.TunedCosts.IterNs)
	}
	st, err := rt.Inspect(l)
	if err != nil {
		t.Fatal(err)
	}
	wantDa, wantWf, wantDyn := rep.TunedCosts.PredictN(st, 2, 1)
	if rep.PredictedDoacrossNs != wantDa || rep.PredictedWavefrontNs != wantWf || rep.PredictedDynamicNs != wantDyn {
		t.Errorf("report predictions were not re-stamped from the post-run coefficients:\ngot  (%v, %v, %v)\nwant (%v, %v, %v)",
			rep.PredictedDoacrossNs, rep.PredictedWavefrontNs, rep.PredictedDynamicNs, wantDa, wantWf, wantDyn)
	}
	// And the pre-run AutoCosts stamp still carries the decision's base.
	if rep.AutoCosts != seed {
		t.Errorf("Report.AutoCosts = %+v, want the seed coefficients %+v", rep.AutoCosts, seed)
	}
}

// TestOnlineTuningConcurrent hammers a tuned runtime from several goroutines
// and reconciles every counter three ways: the reports the callers saw, the
// runtime's tuning snapshot, and the metrics collector's TuningSink counts.
// Run under -race, this is also the data-race proof for the feedback path.
func TestOnlineTuningConcurrent(t *testing.T) {
	const n, goroutines, runsEach = 96, 8, 25
	c := doacross.NewMetricsCollector()
	rt, err := doacross.New(n,
		doacross.WithWorkers(3),
		doacross.WithExecutor(doacross.Auto),
		doacross.WithMetrics(c),
		doacross.WithOnlineTuning(doacross.TuningOptions{
			InitialCosts: doacross.AutoCosts{BarrierNs: 400, FlagCheckNs: 30, ClaimNs: 25, IterNs: 50},
			Seed:         11,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	l := tuningChainLoop(n)

	var mu sync.Mutex
	var explored uint64
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			y := make([]float64, n)
			for r := 0; r < runsEach; r++ {
				rep, err := rt.Run(context.Background(), l, y)
				if err != nil {
					t.Errorf("run failed: %v", err)
					return
				}
				if rep.Explored {
					mu.Lock()
					explored++
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()

	const total = goroutines * runsEach
	snap := rt.TuningSnapshot()
	if snap.Observations != total {
		t.Errorf("tuner observed %d runs, want %d", snap.Observations, total)
	}
	if snap.Explorations != explored {
		t.Errorf("tuner explorations = %d, reports say %d", snap.Explorations, explored)
	}
	if len(snap.Plans) != 1 {
		t.Fatalf("tuner tracks %d plans, want 1", len(snap.Plans))
	}
	p := snap.Plans[0]
	if got := p.Doacross.Observations + p.Wavefront.Observations + p.WavefrontDynamic.Observations; got != total {
		t.Errorf("per-arm observations sum to %d, want %d", got, total)
	}
	ms := c.Snapshot()
	if ms.TuningObservations != total || ms.TuningExplorations != explored {
		t.Errorf("collector saw %d/%d tuning events, want %d/%d",
			ms.TuningObservations, ms.TuningExplorations, total, explored)
	}
	if ms.Runs != total {
		t.Errorf("collector saw %d runs, want %d", ms.Runs, total)
	}
}

// TestOnlineTuningFrozenByAutoCosts checks the freeze contract at the public
// surface: combining WithOnlineTuning with WithAutoCosts pins the model, so
// the tuner records nothing — its snapshot is identical before and after any
// number of runs, and reports carry no tuned stamps.
func TestOnlineTuningFrozenByAutoCosts(t *testing.T) {
	const n = 128
	rt, err := doacross.New(n,
		doacross.WithWorkers(2),
		doacross.WithExecutor(doacross.Auto),
		doacross.WithAutoCosts(doacross.AutoCosts{BarrierNs: 1000, FlagCheckNs: 5, ClaimNs: 25, IterNs: 80}),
		doacross.WithOnlineTuning(doacross.TuningOptions{Seed: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	l := tuningChainLoop(n)
	y := make([]float64, n)

	before := rt.TuningSnapshot()
	for r := 0; r < 5; r++ {
		rep, err := rt.Run(context.Background(), l, y)
		if err != nil {
			t.Fatal(err)
		}
		if rep.TunedCosts != (doacross.AutoCosts{}) || rep.Explored {
			t.Fatalf("frozen tuner stamped the report: %+v explored=%v", rep.TunedCosts, rep.Explored)
		}
	}
	after := rt.TuningSnapshot()
	if fmt.Sprintf("%+v", before) != fmt.Sprintf("%+v", after) || after.Observations != 0 || len(after.Plans) != 0 {
		t.Fatalf("frozen tuner state changed:\nbefore %+v\nafter  %+v", before, after)
	}
}

// TestWithOnlineTuningValidation checks the option's argument contract.
func TestWithOnlineTuningValidation(t *testing.T) {
	bad := []doacross.TuningOptions{
		{Alpha: 1.5},
		{Alpha: -0.1},
		{Blend: 2},
		{Blend: -1},
		{Epsilon: 1.5},
		{InitialCosts: doacross.AutoCosts{BarrierNs: -1, FlagCheckNs: 5}},
		{InitialCosts: doacross.AutoCosts{BarrierNs: 100}}, // missing flag cost
		{InitialCosts: doacross.AutoCosts{BarrierNs: 100, FlagCheckNs: 5, ClaimNs: -2}},
	}
	for i, o := range bad {
		if _, err := doacross.New(8, doacross.WithOnlineTuning(o)); err == nil {
			t.Errorf("case %d: invalid tuning options %+v accepted", i, o)
		}
	}
	// Negative Epsilon is the documented greedy mode, not an error.
	rt, err := doacross.New(8, doacross.WithOnlineTuning(doacross.TuningOptions{Epsilon: -1}))
	if err != nil {
		t.Fatalf("greedy tuning rejected: %v", err)
	}
	rt.Close()
}
