// Dynamic sparsity: repairing the cached wavefront plan across a
// refinement-style edit loop.
//
// This example builds the SPE2 test problem's ILU(0) lower factor, solves it
// once with the wavefront executor (paying the cold inspection), then drives
// a sequence of in-place row edits through Solver.UpdateRow — the fused
// "splice the CSR row, then RepairPlans" call. Each step prints what the
// repair did (dirty-cone size, earliest perturbed level, repair time), and
// every repaired solve is verified against the sequential substitution of
// the edited matrix. At the end the same edit is replayed against a full
// InvalidatePlans to show the cold re-inspection the repair path avoids,
// alongside the cost model's break-even cone for this workload.
//
// Run with:
//
//	go run ./examples/refinement
package main

import (
	"fmt"

	"doacross"
	"doacross/internal/machine"
	"doacross/internal/sparse"
	"doacross/internal/stencil"
)

func main() {
	prob := stencil.SPE2
	l, _, err := stencil.LowerFactor(prob, 1)
	if err != nil {
		panic(err)
	}
	rhs := stencil.RHS(l.N, 7)
	g := doacross.TrisolveGraph(l)
	st := g.Analyze()
	fmt.Printf("ILU(0) lower factor of %v: %d equations, %d dependency edges, %d wavefront levels\n",
		prob, st.Iterations, st.Edges, st.Levels)

	solver, err := doacross.NewSolver(l,
		doacross.WithWorkers(2),
		doacross.WithExecutor(doacross.Wavefront),
		doacross.WithChunk(32),
	)
	if err != nil {
		panic(err)
	}
	defer solver.Close()

	out := make([]float64, l.N)
	_, rep, err := solver.Solve(rhs, out)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ncold first solve: inspection took %v (PreTime), %d levels\n", rep.PreTime, rep.Levels)

	// The refinement loop: thin a few rows of the factor one at a time, the
	// way fill-in or a refined mesh perturbs a handful of equations between
	// solves. Each UpdateRow splices the row in place and patches the cached
	// plan; nothing is rebuilt from scratch.
	fmt.Println("\nrefinement steps (one row edited per step):")
	edited := []int{l.N / 4, l.N / 2, 3 * l.N / 4}
	for _, i := range edited {
		lo, hi := l.RowPtr[i], l.RowPtr[i+1]
		if hi == lo {
			continue // no off-diagonal entries to drop
		}
		cols := append([]int(nil), l.Col[lo:hi-1]...)
		vals := append([]float64(nil), l.Val[lo:hi-1]...)
		rr, err := solver.UpdateRow(i, cols, vals, l.Diag[i])
		if err != nil {
			panic(err)
		}
		fmt.Printf("  row %5d: repaired=%v cone=%d fromLevel=%d/%d in %v\n",
			i, rr.Repaired, rr.ConeSize, rr.FromLevel, rr.Levels, rr.RepairTime)

		got, runRep, err := solver.Solve(rhs, out)
		if err != nil {
			panic(err)
		}
		want := doacross.SolveSequential(l, rhs)
		if d := sparse.VecMaxDiff(got, want); d > 1e-9 {
			panic(fmt.Sprintf("repaired solve diverged from sequential by %.2e", d))
		}
		fmt.Printf("             solve matches sequential; Report.PlanRepaired=%v RepairNs=%d\n",
			runRep.PlanRepaired, runRep.RepairNs)
	}

	// The road not taken: a wholesale invalidation forces the next solve to
	// re-inspect the whole loop cold — the bill RepairPlans' dirty-cone pass
	// replaces.
	solver.InvalidatePlans()
	_, coldRep, err := solver.Solve(rhs, out)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nafter InvalidatePlans, the cold re-inspection costs %v again\n", coldRep.PreTime)

	// Where the runtime's gate sits for this workload: edits whose dirty
	// cone stays under the break-even threshold repair, larger ones fall
	// back to the cold path (RepairReport.Repaired == false).
	rc := machine.DefaultRepairCosts
	breakEven := rc.BreakEvenCone(st.Iterations, st.Edges)
	if breakEven > st.Iterations {
		breakEven = st.Iterations
	}
	fmt.Printf("cost model: cold inspection %.0f units, break-even cone %d of %d iterations\n",
		rc.ColdInspect(st.Iterations, st.Edges), breakEven, st.Iterations)
}
