// Quickstart: parallelize the paper's Figure 1 loop with the preprocessed
// doacross, through the public doacross package only — this is what an
// external program importing the module looks like.
//
// The loop is
//
//	do i = 1, N
//	  y(a(i)) = 2 * y(b(i)) + i
//	end do
//
// where the index arrays a and b are only known at run time, so a compiler
// cannot tell which iterations depend on which. The preprocessed doacross
// discovers and enforces the dependencies at execution time: an inspector
// records who writes what, the executor busy-waits only on genuine
// flow dependencies, and anti-dependencies are satisfied by renaming.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"doacross"
)

func main() {
	const n = 100000
	const dataLen = 2 * n

	// Execution-time index arrays: a is a random permutation prefix (no two
	// iterations write the same element — the paper's no-output-dependency
	// requirement), b points anywhere, so the loop contains a mixture of
	// true dependencies, anti-dependencies and independent reads.
	rng := rand.New(rand.NewSource(42))
	a := rng.Perm(dataLen)[:n]
	b := make([]int, n)
	for i := range b {
		b[i] = rng.Intn(dataLen)
	}

	loop, err := doacross.NewLoop(n, dataLen).
		Writes(func(i int) []int { return a[i : i+1] }).
		Reads(func(i int) []int { return b[i : i+1] }).
		Body(func(i int, v *doacross.Values) {
			// v.Load performs the execution-time dependency check of the
			// paper's Figure 5: it waits when (and only when) y(b(i)) is
			// produced by an earlier iteration, and otherwise returns the old
			// value.
			v.Store(a[i], 2*v.Load(b[i])+float64(i))
		}).
		Build()
	if err != nil {
		panic(err)
	}

	y0 := make([]float64, dataLen)
	for i := range y0 {
		y0[i] = rng.NormFloat64()
	}

	// Reference: the original sequential loop.
	seq := append([]float64(nil), y0...)
	if err := doacross.RunSequential(loop, seq); err != nil {
		panic(err)
	}

	// Parallel: inspector + executor + postprocessor.
	rt, err := doacross.New(dataLen,
		doacross.WithWorkers(4),
		doacross.WithPolicy(doacross.Dynamic),
		doacross.WithChunk(256),
		doacross.WithWaitStrategy(doacross.WaitSpinYield),
	)
	if err != nil {
		panic(err)
	}
	defer rt.Close()
	par := append([]float64(nil), y0...)
	report, err := rt.Run(context.Background(), loop, par)
	if err != nil {
		panic(err)
	}

	fmt.Println("Preprocessed doacross quickstart (Figure 1 loop)")
	fmt.Printf("  iterations         %d\n", report.Iterations)
	fmt.Printf("  workers            %d\n", report.Workers)
	fmt.Printf("  inspector time     %v\n", report.PreTime)
	fmt.Printf("  executor time      %v\n", report.ExecTime)
	fmt.Printf("  postprocess time   %v\n", report.PostTime)
	fmt.Printf("  true dependencies  %d\n", report.TrueDeps)
	fmt.Printf("  anti/none reads    %d\n", report.AntiOrNone)
	fmt.Printf("  max |par - seq|    %.3g\n", maxDiff(par, seq))
	fmt.Printf("  scratch reusable   %v\n", rt.ScratchClean())
}

// maxDiff returns the largest absolute element-wise difference.
func maxDiff(a, b []float64) float64 {
	d := 0.0
	for i := range a {
		d = math.Max(d, math.Abs(a[i]-b[i]))
	}
	return d
}
