// Serving many right-hand sides through the coalescing SolveService.
//
// The paper's Section 2.1 argument is that preprocessing pays off when one
// plan is reused across many executions. This example pushes that reuse one
// layer up: many concurrent callers each need a single triangular solve, and
// the SolveService coalesces their requests into blocked multi-RHS solves so
// the traversal's fixed costs (level barriers above all) are paid once per
// batch instead of once per caller.
//
// The program builds the 5-PT lower factor, starts one Solver behind a
// SolveService, fires a wave of concurrent callers, and verifies every
// answer against the sequential substitution. It then demonstrates the
// per-request cancellation semantics: one request of a coalescing batch is
// cancelled mid-flight, unblocks immediately with its context's error, and
// its neighbors still receive correct answers — cancellation never aborts
// the batch others are riding in. The service's instrumentation (batch-size
// histogram, flush causes, queue depths) is printed at the end.
//
// Run with:
//
//	go run ./examples/serving
package main

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"doacross"
	"doacross/internal/experiments"
	"doacross/internal/stencil"
)

func main() {
	prob := stencil.FivePoint
	workers := experiments.DefaultLiveWorkers()

	fmt.Printf("Building %v (%d equations) and its ILU(0) lower factor...\n", prob, prob.Equations())
	l, _, err := stencil.LowerFactor(prob, 1)
	if err != nil {
		panic(err)
	}

	solver, err := doacross.NewSolver(l, doacross.WithWorkers(workers))
	if err != nil {
		panic(err)
	}
	defer solver.Close()

	svc, err := doacross.NewSolveService(solver, doacross.ServeOptions{
		Window:   200 * time.Microsecond,
		MaxBatch: doacross.MaxRHSBlock,
	})
	if err != nil {
		panic(err)
	}

	// Phase 1: a wave of concurrent callers. Each caller owns its right-hand
	// sides and sees only plain single-RHS Solve calls; the service batches
	// whatever arrives inside the window behind one SolveMulti.
	const callers = 16
	const solvesPerCaller = 8
	fmt.Printf("\nServing %d concurrent callers x %d solves each (window 200µs, max batch %d)...\n",
		callers, solvesPerCaller, doacross.MaxRHSBlock)

	var wg sync.WaitGroup
	errs := make([]error, callers)
	for c := 0; c < callers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for s := 0; s < solvesPerCaller; s++ {
				rhs := stencil.RHS(l.N, int64(100+c*solvesPerCaller+s))
				y, err := svc.Solve(context.Background(), rhs)
				if err != nil {
					errs[c] = err
					return
				}
				want := doacross.SolveSequential(l, rhs)
				if d := maxDiff(y, want); d > 1e-9 {
					errs[c] = fmt.Errorf("caller %d solve %d: max diff %.2e", c, s, d)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			panic(fmt.Sprintf("caller %d: %v", c, err))
		}
	}
	mid := svc.Stats()
	fmt.Printf("All %d answers match the sequential substitution.\n", mid.Solves)
	fmt.Printf("Coalescing: %d batches, mean batch %.1f (window flushes %d, size flushes %d)\n",
		mid.Batches, mid.MeanBatch(), mid.WindowFlushes, mid.SizeFlushes)
	svc.Close()

	// Phase 2: per-request cancellation. A fresh service with a deliberately
	// wide window guarantees three requests coalesce into one batch; one of
	// them is cancelled while the window is still open. The cancelled caller
	// unblocks at once with context.Canceled and is dropped at batch
	// assembly, and — because the batch always runs to completion under a
	// background context — its two neighbors still get correct answers. (The
	// solver is reused: only one service drives it at a time.)
	demo, err := doacross.NewSolveService(solver, doacross.ServeOptions{
		Window:   20 * time.Millisecond,
		MaxBatch: doacross.MaxRHSBlock,
	})
	if err != nil {
		panic(err)
	}
	defer demo.Close()
	fmt.Println("\nCancelling one request of a coalescing batch (window 20ms)...")
	ctxs := make([]context.Context, 3)
	cancels := make([]context.CancelFunc, 3)
	for i := range ctxs {
		ctxs[i], cancels[i] = context.WithCancel(context.Background())
		defer cancels[i]()
	}
	type answer struct {
		y   []float64
		err error
	}
	answers := make([]answer, 3)
	rhss := make([][]float64, 3)
	var batch sync.WaitGroup
	for i := 0; i < 3; i++ {
		rhss[i] = stencil.RHS(l.N, int64(900+i))
		batch.Add(1)
		go func(i int) {
			defer batch.Done()
			y, err := demo.Solve(ctxs[i], rhss[i])
			answers[i] = answer{y, err}
		}(i)
	}
	// The 20ms window is still open; cancel the middle request while its
	// batch is being assembled.
	time.Sleep(2 * time.Millisecond)
	cancels[1]()
	batch.Wait()

	if answers[1].err == nil {
		// The cancel raced ahead of the solve finishing; the request was
		// simply served. That is legal — cancellation is best-effort — but
		// the common outcome below is the instructive one.
		fmt.Println("(request 1 completed before its cancellation was observed)")
	} else {
		fmt.Printf("request 1: %v (unblocked without waiting for the batch)\n", answers[1].err)
	}
	for _, i := range []int{0, 2} {
		if answers[i].err != nil {
			panic(fmt.Sprintf("neighbor %d failed: %v", i, answers[i].err))
		}
		want := doacross.SolveSequential(l, rhss[i])
		if d := maxDiff(answers[i].y, want); d > 1e-9 {
			panic(fmt.Sprintf("neighbor %d: max diff %.2e", i, d))
		}
	}
	fmt.Println("neighbors 0 and 2: correct answers — the batch survived the cancellation.")

	st := demo.Stats()
	fmt.Println("\nService instrumentation:")
	fmt.Printf("  solves %d  cancelled %d  errors %d\n", st.Solves, st.Cancelled, st.Errors)
	fmt.Printf("  batches %d (window flushes %d, size flushes %d), mean batch %.1f\n",
		st.Batches, st.WindowFlushes, st.SizeFlushes, st.MeanBatch())
	fmt.Printf("  max queue depth %d\n", st.MaxQueueDepth)
	fmt.Print("  batch sizes: ")
	any := false
	for i, n := range st.BatchSizes {
		if n == 0 {
			continue
		}
		if any {
			fmt.Print(" ")
		}
		fmt.Printf("%d×%d", i+1, n)
		any = true
	}
	if !any {
		fmt.Print("(none)")
	}
	fmt.Println()
}

func maxDiff(got, want []float64) float64 {
	worst := 0.0
	for i := range want {
		if d := math.Abs(got[i] - want[i]); d > worst {
			worst = d
		}
	}
	return worst
}
