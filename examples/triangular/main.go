// Sparse triangular solve: the paper's Section 3.2 workload.
//
// This example builds the 5-PT test problem (63x63 five point discretization,
// 3969 equations), factors it with ILU(0), and solves the unit lower
// triangular system L y = b four ways: sequentially, with the plain
// preprocessed doacross, with the doconsider-reordered doacross, and with a
// level-scheduled wavefront baseline. All parallel results are verified
// against the sequential substitution, and the simulated 16-processor
// efficiencies corresponding to the paper's Table 1 row are printed
// alongside.
//
// Run with:
//
//	go run ./examples/triangular
package main

import (
	"fmt"

	"doacross"
	"doacross/internal/experiments"
	"doacross/internal/sparse"
	"doacross/internal/stencil"
	"doacross/internal/trace"
)

func main() {
	prob := stencil.FivePoint
	workers := experiments.DefaultLiveWorkers()

	fmt.Printf("Building %v (%d equations) and computing its ILU(0) factorization...\n", prob, prob.Equations())
	l, _, err := stencil.LowerFactor(prob, 1)
	if err != nil {
		panic(err)
	}
	rhs := stencil.RHS(l.N, 7)
	g := doacross.TrisolveGraph(l)
	fmt.Printf("Lower factor: %d rows, %d off-diagonal nonzeros\n", l.N, l.NNZ())
	fmt.Printf("Dependency DAG: %s\n\n", g.Analyze())

	reference := doacross.SolveSequential(l, rhs)
	opts := []doacross.Option{
		doacross.WithWorkers(workers),
		doacross.WithPolicy(doacross.Dynamic),
		doacross.WithChunk(32),
		doacross.WithWaitStrategy(doacross.WaitSpinYield),
	}

	seqSample := trace.Measure(5, func() { doacross.SolveSequential(l, rhs) })
	fmt.Printf("%-22s %12v\n", "sequential", seqSample.Min())

	kinds := []doacross.SolverKind{doacross.SolverDoacross, doacross.SolverReordered, doacross.SolverLevelScheduled}
	for _, kind := range kinds {
		var out []float64
		sample := trace.Measure(5, func() {
			var solveErr error
			out, _, solveErr = doacross.SolveTriangular(kind, l, rhs, opts...)
			if solveErr != nil {
				panic(solveErr)
			}
		})
		status := "matches sequential"
		if d := sparse.VecMaxDiff(out, reference); d > 1e-9 {
			status = fmt.Sprintf("MISMATCH %.2e", d)
		}
		fmt.Printf("%-22s %12v  speedup %.2f  (%s)\n",
			kind, sample.Min(), trace.Speedup(seqSample.Min(), sample.Min()), status)
	}

	// The paper-scale picture (simulated 16 processors): the plain doacross
	// versus the reordered doacross — the 5-PT row of Table 1.
	t1, err := experiments.RunTable1(experiments.Table1Config{
		Problems:   []stencil.Problem{prob},
		Processors: experiments.PaperProcessors,
		Seed:       1,
		Reordering: doacross.ReorderLevel,
	})
	if err != nil {
		panic(err)
	}
	row := t1.Rows[0]
	fmt.Printf("\nSimulated 16-processor efficiencies for the Table 1 row of %v:\n", prob)
	fmt.Printf("  preprocessed doacross            %.2f\n", row.DoacrossEff)
	fmt.Printf("  doacross with doconsider order   %.2f   (paper band 0.63..0.75)\n", row.ReorderedEff)
	fmt.Printf("  simulated times (ms): doacross %.0f, reordered %.0f, sequential %.0f\n",
		row.DoacrossMs, row.ReorderedMs, row.SequentialMs)
}
