// Krylov solver: the application that motivates the paper's Section 3.2
// experiments.
//
// The paper notes that the solution of sparse triangular systems "accounts
// for a large fraction of the sequential execution time of linear solvers
// that use Krylov methods". This example solves a Poisson problem on a
// 63x63 grid with ILU(0)-preconditioned conjugate gradients and shows the
// preprocessed doacross slotting in as the preconditioner's forward
// substitution: the iteration counts and the solution are identical to the
// sequential preconditioner, because the doacross computes exactly the
// sequential result.
//
// Run with:
//
//	go run ./examples/krylov
package main

import (
	"fmt"

	"doacross"
	"doacross/internal/experiments"
	"doacross/internal/krylov"
	"doacross/internal/sparse"
	"doacross/internal/stencil"
)

func main() {
	a, err := stencil.FivePointGrid(63, 63)
	if err != nil {
		panic(err)
	}
	b := stencil.RHS(a.Rows, 3)
	workers := experiments.DefaultLiveWorkers()
	fmt.Printf("Poisson problem on a 63x63 grid: %d unknowns, %d nonzeros\n\n", a.Rows, a.NNZ())

	// Plain CG (no preconditioner).
	xPlain := make([]float64, a.Rows)
	plain, err := krylov.CG(a, b, xPlain, nil, krylov.Options{Tolerance: 1e-8})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-44s %s\n", "CG, no preconditioner:", plain)

	// ILU(0)-PCG with the standard sequential triangular solves.
	xSeq, seqRes, err := krylov.SolveWithILU(a, b, nil, krylov.Options{Tolerance: 1e-8})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-44s %s\n", "ILU(0)-PCG, sequential forward solve:", seqRes)

	// ILU(0)-PCG with both preconditioner substitutions run as preprocessed
	// doacross loops (forward for L, backward for U), iterations reordered by
	// the doconsider transform. The reusable solvers are built once: every CG
	// iteration reuses the same two persistent worker pools, scratch arrays
	// and reordering plans — the reuse the paper's preprocessing pays for.
	opts := []doacross.Option{
		doacross.WithWorkers(workers),
		doacross.WithPolicy(doacross.Dynamic),
		doacross.WithChunk(32),
		doacross.WithWaitStrategy(doacross.WaitSpinYield),
	}
	var release func()
	xPar, parRes, err := krylov.SolveWithILU(a, b, func(p *sparse.ILUPreconditioner) {
		var wireErr error
		release, wireErr = doacross.UseDoacrossILUReordered(p, doacross.ReorderLevel, opts...)
		if wireErr != nil {
			panic(wireErr)
		}
	}, krylov.Options{Tolerance: 1e-8})
	if err != nil {
		panic(err)
	}
	release()
	fmt.Printf("%-44s %s\n", "ILU(0)-PCG, doacross forward solve:", parRes)

	fmt.Printf("\nsolution agreement: |x_doacross - x_sequential| = %.3g\n", sparse.VecMaxDiff(xSeq, xPar))
	fmt.Printf("iteration counts identical: %v (the doacross reproduces the sequential solve bit-for-bit in exact arithmetic)\n",
		seqRes.Iterations == parRes.Iterations)
	fmt.Printf("preconditioning benefit: %d CG iterations without, %d with ILU(0)\n", plain.Iterations, seqRes.Iterations)
}
