// Figure 4 test loop: the workload of the paper's Section 3.1 experiment.
//
// This example runs the nested test loop
//
//	do i = 1, N
//	  do j = 1, M
//	    y(a(i)) = y(a(i)) + val(j) * y(b(i) + nbrs(j))
//
// with a(i) = 2i and nbrs(j) = 2j − L for a few values of L, three ways:
// sequentially, with the live preprocessed doacross on this host, and on the
// simulated 16-processor machine the paper used. It prints the dependency
// structure and the efficiencies, showing the odd-L overhead floor and the
// monotone improvement with even L that Figure 6 reports.
//
// Run with:
//
//	go run ./examples/figure4loop
package main

import (
	"context"
	"fmt"

	"doacross"
	"doacross/internal/experiments"
	"doacross/internal/machine"
	"doacross/internal/sched"
	"doacross/internal/sparse"
	"doacross/internal/testloop"
	"doacross/internal/trace"
)

func main() {
	const n = 20000
	const m = 5
	workers := experiments.DefaultLiveWorkers()

	fmt.Printf("Figure 4 test loop, N=%d, M=%d, live workers=%d, simulated P=16\n\n", n, m, workers)
	fmt.Printf("%4s %12s %14s %14s %16s  %s\n", "L", "deps", "live speedup", "live eff", "simulated eff", "dependency structure")

	for _, l := range []int{1, 4, 8, 12, 14} {
		tc := testloop.Config{N: n, M: m, L: l}
		loop := tc.Loop()
		g := tc.Graph()

		// Sequential reference and timing.
		base := tc.InitialData()
		seq := append([]float64(nil), base...)
		var seqErr error
		seqSample := trace.Measure(3, func() {
			copy(seq, base)
			if err := doacross.RunSequential(loop, seq); err != nil {
				seqErr = err
			}
		})
		if seqErr != nil {
			panic(seqErr)
		}

		// Live preprocessed doacross through the public facade.
		rt, err := doacross.New(loop.Data,
			doacross.WithWorkers(workers),
			doacross.WithPolicy(doacross.Dynamic),
			doacross.WithChunk(128),
			doacross.WithWaitStrategy(doacross.WaitSpinYield),
		)
		if err != nil {
			panic(err)
		}
		par := append([]float64(nil), base...)
		parSample := trace.Measure(3, func() {
			copy(par, base)
			if _, err := rt.Run(context.Background(), loop, par); err != nil {
				panic(err)
			}
		})
		rt.Close()
		if d := sparse.VecMaxDiff(seq, par); d > 1e-9 {
			panic(fmt.Sprintf("L=%d: doacross result differs from sequential by %v", l, d))
		}

		// Simulated 16-processor execution with the calibrated cost model.
		sim, err := machine.Simulate(g, machine.Config{
			Processors: experiments.PaperProcessors,
			Policy:     sched.Cyclic,
			ReadPreds:  machine.ReadPredsFromAccess(tc.Access()),
		}, experiments.Figure6CostModel(m))
		if err != nil {
			panic(err)
		}

		structure := "no cross-iteration dependencies"
		if tc.HasCrossIterationDeps() {
			structure = fmt.Sprintf("%d true-dependency edges, min distance %d", g.Edges, tc.MinDepDistance())
		}
		fmt.Printf("%4d %12d %14.2f %14.2f %16.3f  %s\n",
			l, g.Edges,
			trace.Speedup(seqSample.Min(), parSample.Min()),
			trace.Efficiency(seqSample.Min(), parSample.Min(), workers),
			sim.Efficiency,
			structure)
	}

	fmt.Println("\nNote: live numbers reflect this host's core count and Go's scheduler;")
	fmt.Println("the simulated column reproduces the paper's 16-processor Encore Multimax setting.")
}
