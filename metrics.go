package doacross

import (
	"fmt"

	"doacross/internal/core"
)

// MetricsSink receives the runtime's in-process metrics when a Runtime (or
// Solver) is built with WithMetrics: one RecordRun per completed run with the
// resolved executor name and wall time, one RecordPlan per schedule-cache
// transition, and one RecordAccessAbort per run aborted by the declared-access
// sanitizer. See the internal core documentation for the exact counting
// contract. Implementations must be safe for concurrent use (one sink may be
// shared across runtimes) and must not call back into the runtime that is
// invoking them. MetricsCollector is the ready-made implementation.
type MetricsSink = core.MetricsSink

// TuningSink is the optional MetricsSink extension for online-tuning
// feedback events (WithOnlineTuning): RecordTuning fires once per tuned run
// whose measurement was folded into a plan's calibration, with explored
// reporting whether the decision deliberately ran a non-best executor. A
// sink implements it by adding the method — discovery is by type assertion,
// so existing sinks keep working unchanged. MetricsCollector implements it.
type TuningSink = core.TuningSink

// MetricsCollector is the ready-made MetricsSink: lock-protected counters,
// per-executor latency histograms and plan-cache event counts, snapshotted
// with Snapshot. Construct with NewMetricsCollector; the zero value is not
// usable.
type MetricsCollector = core.MetricsCollector

// NewMetricsCollector returns an empty collector ready to be passed to
// WithMetrics (and shared across any number of runtimes).
func NewMetricsCollector() *MetricsCollector { return core.NewMetricsCollector() }

// MetricsSnapshot is a point-in-time copy of a MetricsCollector's counters.
type MetricsSnapshot = core.MetricsSnapshot

// ExecutorMetrics is one executor's slice of a MetricsSnapshot: run and error
// counts, total/max wall time, and a log2 latency histogram.
type ExecutorMetrics = core.ExecutorMetrics

// MetricsNsBuckets is the number of log2 buckets in an ExecutorMetrics
// latency histogram.
const MetricsNsBuckets = core.MetricsNsBuckets

// PlanEvent identifies one schedule-cache transition reported through
// MetricsSink.RecordPlan.
type PlanEvent = core.PlanEvent

// Schedule-cache transitions.
const (
	// PlanHit is a run served from the cached wavefront plan (either tier).
	PlanHit PlanEvent = core.PlanHit
	// PlanMiss is a cold inspection: no cached plan matched, one was built.
	PlanMiss PlanEvent = core.PlanMiss
	// PlanInvalidated is a cache eviction (InvalidatePlans, or the fallback
	// path of RepairPlans, which also reports PlanRepairFallback).
	PlanInvalidated PlanEvent = core.PlanInvalidated
	// PlanRepaired is a RepairPlans call that patched the plan in place.
	PlanRepaired PlanEvent = core.PlanRepaired
	// PlanRepairFallback is a RepairPlans call that fell back to a full
	// invalidation instead of patching.
	PlanRepairFallback PlanEvent = core.PlanRepairFallback
)

// WithMetrics installs a metrics sink on the runtime: every completed run,
// schedule-cache transition and access-check abort is reported to sink (see
// MetricsSink for the contract). The sink may be shared across runtimes — a
// MetricsCollector aggregates them all. When no sink is installed the
// instrumentation costs a single nil test per event site; runs themselves are
// never slowed beyond the two clock readings Run already takes.
func WithMetrics(sink MetricsSink) Option {
	return func(c *config) {
		if sink == nil {
			c.fail(fmt.Errorf("doacross: WithMetrics requires a non-nil sink"))
			return
		}
		c.opts.Metrics = sink
	}
}
