package doacross

import "doacross/internal/serve"

// SolveService is the request-coalescing serving front end over a Solver:
// concurrent single-RHS Solve calls are collected by a bounded intake queue,
// batched within a configurable window (or until a maximum batch size),
// submitted as one blocked multi-RHS traversal, and demultiplexed back to
// their callers. Cancellation is per request — a cancelled request's answer
// is discarded without aborting the batch its neighbors ride in. Construct
// with NewSolveService; Close releases the dispatcher (but not the solver).
type SolveService = serve.SolveService

// ServeOptions configures a SolveService: the coalescing window, the batch
// size that triggers an immediate flush, the intake queue bound, and an
// optional MetricsCollector whose runtime-level counters the service
// surfaces in its Stats (build the solver with WithMetrics on the same
// collector).
type ServeOptions = serve.Options

// ServiceStats is a snapshot of a SolveService's instrumentation: request
// outcomes, batch counts by flush cause, queue depths, the batch-size
// histogram, and — when ServeOptions.Metrics is set — the runtime-level
// metrics snapshot.
type ServiceStats = serve.Stats

// Errors a SolveService's Solve can return (beyond the solver's own and the
// request context's).
var (
	// ErrServiceClosed reports a Solve on a closed service.
	ErrServiceClosed = serve.ErrClosed
	// ErrServiceQueueFull reports an enqueue rejected at the queue bound.
	ErrServiceQueueFull = serve.ErrQueueFull
)

// NewSolveService starts the coalescing front end over s. The solver is only
// ever called from the service's single dispatcher goroutine, so one
// (non-concurrency-safe) Solver safely serves any number of concurrent
// callers through the service. Close the service when done; the solver
// remains open and owned by the caller.
func NewSolveService(s *Solver, opts ServeOptions) (*SolveService, error) {
	return serve.NewSolveService(s, opts)
}
