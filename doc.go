// Package doacross is the public entry point to the preprocessed doacross
// runtime, a reproduction and extension of Saltz & Mirchandaney, "The
// Preprocessed Doacross Loop" (ICPP 1991 / ICASE Interim Report 11).
//
// A doacross loop is a loop whose cross-iteration dependencies are only
// known at run time: iterations read and write elements of a shared
// []float64 through subscripts computed from data. The runtime executes such
// a loop in three phases, exactly as in the paper: an inspector records
// which iteration writes each element, the executor runs iterations
// concurrently with per-element waits on true dependencies
// (anti-dependencies are satisfied by renaming into a fresh buffer), and a
// postprocessor restores the scratch state so the same runtime can
// immediately serve the next loop — the reuse the whole design pays for.
//
// # Usage
//
// Describe the loop with NewLoop, build a reusable Runtime with New and the
// functional options, and execute with Run:
//
//	loop, err := doacross.NewLoop(n, dataLen).
//		Writes(func(i int) []int { return a[i : i+1] }).
//		Body(func(i int, v *doacross.Values) {
//			v.Store(a[i], 2*v.Load(b[i])+float64(i))
//		}).
//		Build()
//	if err != nil { ... }
//
//	rt, err := doacross.New(dataLen,
//		doacross.WithWorkers(8),
//		doacross.WithPolicy(doacross.Dynamic),
//		doacross.WithChunk(128),
//	)
//	if err != nil { ... }
//	defer rt.Close()
//
//	report, err := rt.Run(ctx, loop, y)
//
// Run honors ctx: cancelling it (or passing a deadline) aborts the run
// between wavefront chunks and returns ctx's error without leaking workers
// or scratch state. Bodies can fail fast by returning an error (BodyErr) or
// calling Values.Fail; a panicking body is recovered into a returned error.
// After any failed run the Runtime remains fully reusable.
//
// The execution strategy is pluggable (WithExecutor): the default Doacross
// is the paper's flag-based busy-wait construct; Wavefront pre-schedules the
// inspected dependency graph into barrier-separated level sets whose
// decomposition and static schedule are cached across runs;
// WavefrontDynamic runs the same levels with dynamic within-level
// self-scheduling, absorbing heavy-tailed per-iteration costs at a claim
// per chunk; Auto inspects once and picks from the graph's shape with a
// calibrated three-way cost model. WithOnlineTuning closes Auto's loop with
// measured feedback: each completed run's executor-phase time updates a
// per-plan moving average keyed by the plan's structural fingerprint,
// back-solves the one coefficient the calibration probe cannot measure (the
// per-iteration body weight), and — with a seeded, deterministic
// epsilon-greedy exploration — escapes the lock-in where a mispriced model
// never tries the arm that would refute it. Tuning is off by default,
// freezes under explicit WithAutoCosts coefficients, and costs nothing when
// off. See the README's "Choosing an executor" and "Self-tuning Auto".
//
// The runtime is the paper's Section 2.1 design: one Runtime (scratch arrays
// plus a persistent worker pool) is meant to be built once and reused across
// many runs, the access pattern of iterative solvers. For the paper's
// Section 3.2 application — sparse triangular solves inside ILU(0)
// preconditioned Krylov methods — the package also exposes a reusable Solver
// and UseDoacrossILU, which wire both preconditioner substitutions to
// persistent doacross runtimes.
//
// # Serving many right-hand sides
//
// A solver reused across many independent right-hand sides pays the
// traversal's fixed costs — level barriers above all — once per solve. Two
// layers remove that overhead. Solver.SolveMulti (and Runtime.RunMulti under
// it, driving a Loop's BodyMulti) carries a block of up to MaxRHSBlock
// right-hand sides through one traversal, classifying each dependency once
// per element row rather than once per column. NewSolveService builds the
// request-side counterpart: a coalescing front end whose concurrent
// single-RHS Solve calls are collected by a bounded intake queue for a
// configurable window, submitted as one SolveMulti, and demultiplexed back
// to their callers — request batching in the inference-server sense.
//
// Cancellation at the service is per request, never per batch. A request's
// context is checked at three points: at enqueue (a dead request is rejected
// before queueing), when its batch is assembled (a dead request is dropped
// without being solved), and at delivery (a request cancelled while its
// batch was being solved has its answer discarded). In the last case the
// batch itself always runs to completion under a background context, so one
// caller's cancellation never aborts the solves its neighbors are riding
// in; the cancelled caller unblocks immediately with ctx.Err() and, because
// the service copied its right-hand side at enqueue, may reuse its buffers
// at once. A solver error, by contrast, fails every request of the batch.
// Close answers still-queued requests with ErrServiceClosed, and a full
// intake queue rejects new requests with ErrServiceQueueFull rather than
// blocking the caller.
//
// # The doacross contract, and checking it
//
// Correctness rests on three conventions the compiler cannot enforce:
//
//   - All shared-array accesses inside a body go through Values. A body that
//     writes a captured outer variable races under every parallel executor
//     and is invisible to the inspector.
//   - The declared pattern is truthful: Writes(i) covers every Store and
//     Reads(i) every Load the body performs (over-declaring is safe — it only
//     adds conservative edges). The dynamic doacross executor discovers reads
//     itself, so an under-declared loop often works until a pre-scheduled
//     (wavefront) executor trusts the declaration and races.
//   - Lifetimes are explicit: a Runtime or Solver owns a persistent worker
//     pool, so Close it when done (a GC finalizer is the only fallback); and
//     a driver that mutates a loop's index arrays in place must call
//     RepairPlans with the edited iterations (incremental: only the dirty
//     cone of the cached plan is recomputed) or InvalidatePlans (wholesale
//     eviction) before the next run, or the schedule cache replays a plan
//     built for the old pattern.
//
// Two tools enforce the contract. The static suite in cmd/doavet (run
// directly as `doavet ./...`, or as `go vet -vettool=doavet ./...`) flags
// captured-variable writes in bodies, index-slice mutations missing a
// following RepairPlans/InvalidatePlans, runtimes, solvers and solve services that
// neither get closed nor escape, and discarded Run/Solve errors or nil
// Contexts. The run-time
// sanitizer behind WithAccessCheck(true) shadow-records each iteration's
// actual Values accesses, diffs them against the declaration and aborts the
// run with an *AccessError naming the iteration and element on the first
// mismatch — use it in tests and while bringing up a new loop; when off it
// costs one nil test per accessor.
//
// # Observability
//
// What the inspector built, and what the runtime does with it, is exposed at
// three layers. Runtime.PlanSnapshot deep-copies a loop's cached wavefront
// plan; ExportPlan and EncodePlan serialize it to the versioned JSON plan
// document (PlanDoc, schema PlanSchemaVersion — DecodePlan rejects any other
// schema number rather than guessing, so the format can evolve without
// silently misreading old files), and PlanDoc.DOT renders the DAG as
// Graphviz DOT. Both encoders are byte-deterministic: the same plan always
// yields the same bytes, so exported plans can be diffed and committed as
// golden files. The decoder is self-checking — a document whose recorded
// schedule disagrees with one rebuilt from its own level decomposition is
// rejected, never replayed. cmd/doastat is the command-line face of this
// layer.
//
// WithMetrics(sink) installs the in-process hook. The sink sees one
// RecordRun per completed Run/RunMulti call — after the executor drained,
// with the resolved executor name, wall time and error; calls rejected
// before an executor resolved (argument validation, pre-run cancellation)
// are not counted — one RecordPlan per schedule-cache transition (hit, miss,
// invalidation, in-place repair, or repair fallback, the last also counting
// an invalidation), and one RecordAccessAbort per run aborted by the access
// sanitizer. Sinks must be safe for concurrent use and must not call back
// into the runtime. NewMetricsCollector is the ready-made sink; with no sink
// installed each recording site costs a single nil test. A sink that also
// implements TuningSink additionally receives one RecordTuning per run whose
// measurement was folded into a plan's online-tuning state — the count
// always reconciles with Runtime.TuningSnapshot, whose per-plan view (arm
// observation counts, moving averages, calibrated coefficients) is the
// tuner's third observability surface alongside the Report stamps
// (TunedCosts, Explored, re-stamped predictions).
package doacross
