// Integration tests of the pluggable executor layer through the public
// facade: pre-scheduled wavefront execution on the paper's triangular
// systems, the schedule cache across repeated solves, and automatic
// executor selection.
package doacross_test

import (
	"context"
	"testing"

	"doacross"
	"doacross/internal/stencil"
)

// TestWavefrontSolvesPaperSystems is the acceptance property: the wavefront
// executor solves every Table 1 triangular system (forward and backward
// substitution) with results bitwise identical to the sequential solve.
func TestWavefrontSolvesPaperSystems(t *testing.T) {
	for _, prob := range stencil.Problems {
		l, u, err := stencil.LowerFactor(prob, 1)
		if err != nil {
			t.Fatal(err)
		}
		rhs := stencil.RHS(l.N, 7)
		opts := []doacross.Option{
			doacross.WithWorkers(4),
			doacross.WithExecutor(doacross.Wavefront),
		}
		for _, tri := range []*doacross.Triangular{l, u} {
			want := doacross.SolveSequential(tri, rhs)
			got, rep, err := doacross.SolveTriangular(doacross.SolverDoacross, tri, rhs, opts...)
			if err != nil {
				t.Fatalf("%v lower=%v: %v", prob, tri.Lower, err)
			}
			if rep.Executor != "wavefront" {
				t.Fatalf("%v: report executor %q, want wavefront", prob, rep.Executor)
			}
			if rep.Levels == 0 {
				t.Fatalf("%v: wavefront run reports zero levels", prob)
			}
			if rep.WaitPolls != 0 {
				t.Fatalf("%v: wavefront run busy-waited (%d polls)", prob, rep.WaitPolls)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%v lower=%v: element %d differs: %v vs %v", prob, tri.Lower, i, want[i], got[i])
				}
			}
			// The SolverWavefront kind is the same executor by name.
			got2, _, err := doacross.SolveTriangular(doacross.SolverWavefront, tri, rhs, doacross.WithWorkers(4))
			if err != nil {
				t.Fatalf("%v SolverWavefront: %v", prob, err)
			}
			for i := range want {
				if want[i] != got2[i] {
					t.Fatalf("%v SolverWavefront: element %d differs", prob, i)
				}
			}
		}
	}
}

// TestScheduleCacheAcrossSolves checks the repeated-solve premise: on one
// reusable Solver the first wavefront solve inspects cold, every later solve
// hits the schedule cache, and the cached solves still produce bitwise
// sequential results.
func TestScheduleCacheAcrossSolves(t *testing.T) {
	l, _, err := stencil.LowerFactor(stencil.FivePoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	solver, err := doacross.NewSolver(l,
		doacross.WithWorkers(4),
		doacross.WithExecutor(doacross.Wavefront),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer solver.Close()

	for rep := 0; rep < 5; rep++ {
		rhs := stencil.RHS(l.N, int64(rep))
		want := doacross.SolveSequential(l, rhs)
		got, r, err := solver.Solve(rhs, nil)
		if err != nil {
			t.Fatal(err)
		}
		if wantCached := rep > 0; r.InspectCached != wantCached {
			t.Fatalf("solve %d: InspectCached=%v, want %v", rep, r.InspectCached, wantCached)
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("solve %d: element %d differs", rep, i)
			}
		}
	}
}

// TestAutoExecutorThroughFacade checks WithExecutor(Auto) end to end: with
// cost coefficients where barriers are cheap relative to the flag protocol,
// the cost model pre-schedules the five-point factor (its natural order is
// riddled with distance-1 stalls), the report names the picked strategy and
// the prediction behind it, and the result matches the sequential solve.
func TestAutoExecutorThroughFacade(t *testing.T) {
	l, _, err := stencil.LowerFactor(stencil.FivePoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	rhs := stencil.RHS(l.N, 7)
	want := doacross.SolveSequential(l, rhs)
	got, rep, err := doacross.SolveTriangular(doacross.SolverDoacross, l, rhs,
		doacross.WithWorkers(4),
		doacross.WithExecutor(doacross.Auto),
		doacross.WithAutoCosts(doacross.AutoCosts{BarrierNs: 100, FlagCheckNs: 10}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Executor != "wavefront" {
		t.Fatalf("auto picked %q for the five-point factor, want wavefront", rep.Executor)
	}
	if rep.AutoCosts.BarrierNs != 100 || rep.AutoCosts.FlagCheckNs != 10 {
		t.Fatalf("report did not carry the configured auto costs: %+v", rep.AutoCosts)
	}
	if !(rep.PredictedWavefrontNs > 0 && rep.PredictedWavefrontNs < rep.PredictedDoacrossNs) {
		t.Fatalf("predictions inconsistent with the pick: doacross=%.0f wavefront=%.0f",
			rep.PredictedDoacrossNs, rep.PredictedWavefrontNs)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("element %d differs", i)
		}
	}
}

// TestAutoSelfCalibrates checks the probe path: without WithAutoCosts the
// runtime measures its own barrier and flag-check costs on the live pool.
// Which executor wins is host-dependent (that is the point of calibrating),
// so the test asserts only that a decision was made from positive
// coefficients, the predictions are consistent with the pick, and the run
// is correct.
func TestAutoSelfCalibrates(t *testing.T) {
	l, _, err := stencil.LowerFactor(stencil.FivePoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	rhs := stencil.RHS(l.N, 7)
	want := doacross.SolveSequential(l, rhs)
	got, rep, err := doacross.SolveTriangular(doacross.SolverDoacross, l, rhs,
		doacross.WithWorkers(4),
		doacross.WithExecutor(doacross.Auto),
	)
	if err != nil {
		t.Fatal(err)
	}
	if rep.AutoCosts.BarrierNs <= 0 || rep.AutoCosts.FlagCheckNs <= 0 {
		t.Fatalf("self-calibration produced unusable coefficients: %+v", rep.AutoCosts)
	}
	wantExec := "doacross"
	if rep.PredictedWavefrontNs < rep.PredictedDoacrossNs {
		wantExec = "wavefront"
	}
	if rep.Executor != wantExec {
		t.Fatalf("executor %q inconsistent with predictions (doacross=%.0f wavefront=%.0f)",
			rep.Executor, rep.PredictedDoacrossNs, rep.PredictedWavefrontNs)
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("element %d differs", i)
		}
	}
}

// TestAutoFlipsAtBreakEven is the cost-model acceptance property: for a
// fixed loop shape, sweeping the calibrated barrier/flag-check cost ratio
// across the model's break-even point flips the Auto selection from
// wavefront (cheap barriers) to doacross (expensive barriers), with the
// flip exactly where Predict says the two estimates cross.
func TestAutoFlipsAtBreakEven(t *testing.T) {
	l, _, err := stencil.LowerFactor(stencil.FivePoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	rhs := stencil.RHS(l.N, 7)
	const workers = 4
	const flagNs = 10.0

	// Locate the break-even ratio from the model itself, using the stats the
	// runtime's own inspection reports.
	rt, err := doacross.New(l.N, doacross.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	loop, err := doacross.TrisolveLoop(l, rhs)
	if err != nil {
		rt.Close()
		t.Fatal(err)
	}
	st, err := rt.Inspect(loop)
	rt.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Levels <= 1 {
		t.Fatalf("degenerate decomposition: %+v", st)
	}
	lo, hi := 1e-3, 1e6
	for range 200 {
		mid := (lo + hi) / 2
		tda, twf, _ := doacross.AutoCosts{BarrierNs: mid * flagNs, FlagCheckNs: flagNs}.Predict(st, workers)
		if twf < tda {
			lo = mid
		} else {
			hi = mid
		}
	}
	breakEven := (lo + hi) / 2
	if breakEven <= 1e-3 || breakEven >= 1e6 {
		t.Fatalf("no break-even ratio found in range (%.4g)", breakEven)
	}

	solveWithRatio := func(ratio float64) doacross.Report {
		t.Helper()
		_, rep, err := doacross.SolveTriangular(doacross.SolverDoacross, l, rhs,
			doacross.WithWorkers(workers),
			doacross.WithExecutor(doacross.Auto),
			doacross.WithAutoCosts(doacross.AutoCosts{BarrierNs: ratio * flagNs, FlagCheckNs: flagNs}),
		)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	if rep := solveWithRatio(breakEven / 2); rep.Executor != "wavefront" {
		t.Fatalf("below break-even (ratio %.1f): picked %q, want wavefront", breakEven/2, rep.Executor)
	}
	if rep := solveWithRatio(breakEven * 2); rep.Executor != "doacross" {
		t.Fatalf("above break-even (ratio %.1f): picked %q, want doacross", breakEven*2, rep.Executor)
	}
}

// TestDynamicWavefrontSolvesPaperSystems extends the acceptance property to
// the dynamic within-level executor: it solves every Table 1 triangular
// system (forward and backward substitution) with results bitwise identical
// to the sequential solve, never busy-waits, and reports its own name.
func TestDynamicWavefrontSolvesPaperSystems(t *testing.T) {
	for _, prob := range stencil.Problems {
		l, u, err := stencil.LowerFactor(prob, 1)
		if err != nil {
			t.Fatal(err)
		}
		rhs := stencil.RHS(l.N, 7)
		for _, tri := range []*doacross.Triangular{l, u} {
			want := doacross.SolveSequential(tri, rhs)
			got, rep, err := doacross.SolveTriangular(doacross.SolverWavefrontDynamic, tri, rhs, doacross.WithWorkers(4))
			if err != nil {
				t.Fatalf("%v lower=%v: %v", prob, tri.Lower, err)
			}
			if rep.Executor != "wavefront-dynamic" {
				t.Fatalf("%v: report executor %q, want wavefront-dynamic", prob, rep.Executor)
			}
			if rep.Levels == 0 {
				t.Fatalf("%v: dynamic wavefront run reports zero levels", prob)
			}
			if rep.WaitPolls != 0 {
				t.Fatalf("%v: dynamic wavefront run busy-waited (%d polls)", prob, rep.WaitPolls)
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("%v lower=%v: element %d differs: %v vs %v", prob, tri.Lower, i, want[i], got[i])
				}
			}
		}
	}
}

// skewedLevelLoop builds a loop whose dependency graph is a fat chain of
// depth levels of the given width, with a heavy-tailed twist: every
// iteration reads one element of the previous level, and the FIRST iteration
// of each level (the hot one) reads hotReads of them. Under a static block
// schedule the hot iteration's worker also receives its share of cheap
// members, so each level's read imbalance is what the dynamic within-level
// executor reclaims. Returns the loop and a data array sized for it.
func skewedLevelLoop(width, depth, hotReads int) (*doacross.Loop, []float64, error) {
	n := width * depth
	reads := make([][]int, n)
	for l := 1; l < depth; l++ {
		base, prev := l*width, (l-1)*width
		for k := 0; k < width; k++ {
			i := base + k
			reads[i] = []int{prev + k}
			if k == 0 {
				for h := 1; h <= hotReads && h < width; h++ {
					reads[i] = append(reads[i], prev+h)
				}
			}
		}
	}
	loop, err := doacross.NewLoop(n, n).
		Writes(func(i int) []int { return []int{i} }).
		Reads(func(i int) []int { return reads[i] }).
		Body(func(i int, v *doacross.Values) {
			s := float64(i%7) + 1
			for k, e := range reads[i] {
				s += float64(k+1) * v.Load(e)
			}
			v.Store(i, s)
		}).
		Build()
	if err != nil {
		return nil, nil, err
	}
	y := make([]float64, n)
	for i := range y {
		y[i] = float64((i*31)%17) * 0.25
	}
	return loop, y, nil
}

// TestAutoFlipsToDynamicAtBreakEven is the acceptance property of the
// three-way cost model, mirroring TestAutoFlipsAtBreakEven one strategy up:
// on a skewed-cost loop (one hot iteration per level) with cheap barriers,
// sweeping the claim cost across the model's own static/dynamic break-even
// flips the Auto selection from wavefront-dynamic (cheap claims reclaim the
// imbalance) to the static wavefront (claims outweigh it), with results
// bitwise sequential on both sides.
func TestAutoFlipsToDynamicAtBreakEven(t *testing.T) {
	const (
		workers   = 4
		flagNs    = 10.0
		barrierNs = 20.0
	)
	loop, y0, err := skewedLevelLoop(64, 8, 48)
	if err != nil {
		t.Fatal(err)
	}
	seq := append([]float64(nil), y0...)
	if err := doacross.RunSequential(loop, seq); err != nil {
		t.Fatal(err)
	}

	rt, err := doacross.New(loop.Data, doacross.WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	st, err := rt.Inspect(loop)
	rt.Close()
	if err != nil {
		t.Fatal(err)
	}
	if st.Levels <= 1 || st.ReadImbalance <= 0 || st.DynamicClaims <= 0 {
		t.Fatalf("degenerate skewed decomposition: %+v", st)
	}

	// Locate the static/dynamic break-even claim cost from the model itself,
	// and confirm the barriers are cheap enough that the flip happens inside
	// the wavefront family (the doacross never wins here).
	predict := func(claimNs float64) (tda, twf, tdyn float64) {
		return doacross.AutoCosts{BarrierNs: barrierNs, FlagCheckNs: flagNs, ClaimNs: claimNs}.Predict(st, workers)
	}
	lo, hi := 1e-4, 1e6
	for range 200 {
		mid := (lo + hi) / 2
		_, twf, tdyn := predict(mid)
		if tdyn < twf {
			lo = mid
		} else {
			hi = mid
		}
	}
	breakEven := (lo + hi) / 2
	if breakEven <= 1e-4 || breakEven >= 1e6 {
		t.Fatalf("no static/dynamic break-even claim cost found (%.4g)", breakEven)
	}
	if tda, twf, _ := predict(breakEven); twf >= tda {
		t.Fatalf("barriers not cheap enough: static wavefront (%.0f) loses to doacross (%.0f) at the break-even", twf, tda)
	}

	solveWithClaim := func(claimNs float64) string {
		t.Helper()
		rt, err := doacross.New(loop.Data,
			doacross.WithWorkers(workers),
			doacross.WithExecutor(doacross.Auto),
			doacross.WithAutoCosts(doacross.AutoCosts{BarrierNs: barrierNs, FlagCheckNs: flagNs, ClaimNs: claimNs}),
		)
		if err != nil {
			t.Fatal(err)
		}
		defer rt.Close()
		y := append([]float64(nil), y0...)
		rep, err := rt.Run(context.Background(), loop, y)
		if err != nil {
			t.Fatal(err)
		}
		for i := range seq {
			if seq[i] != y[i] {
				t.Fatalf("claim %.3f: element %d differs from sequential", claimNs, i)
			}
		}
		if rep.PredictedDynamicNs <= 0 {
			t.Fatalf("claim %.3f: report carries no dynamic prediction: %+v", claimNs, rep)
		}
		return rep.Executor
	}
	if got := solveWithClaim(breakEven / 2); got != "wavefront-dynamic" {
		t.Fatalf("below break-even (claim %.2f): picked %q, want wavefront-dynamic", breakEven/2, got)
	}
	if got := solveWithClaim(breakEven * 2); got != "wavefront" {
		t.Fatalf("above break-even (claim %.2f): picked %q, want wavefront", breakEven*2, got)
	}
}

// TestWithExecutorValidation pins the option's error paths.
func TestWithExecutorValidation(t *testing.T) {
	if _, err := doacross.New(8, doacross.WithExecutor(doacross.ExecutorKind(42))); err == nil {
		t.Fatal("invalid executor kind accepted")
	}

	// Wavefront × WithOrder is a construction-time error, in either option
	// order, and a reordered solver rejects the wavefront executor up front.
	order := []int{1, 0, 2, 3, 4, 5, 6, 7}
	if _, err := doacross.New(8, doacross.WithOrder(order), doacross.WithExecutor(doacross.Wavefront)); err == nil {
		t.Fatal("WithOrder + Wavefront accepted")
	}
	if _, err := doacross.New(8, doacross.WithExecutor(doacross.Wavefront), doacross.WithOrder(order)); err == nil {
		t.Fatal("Wavefront + WithOrder accepted")
	}
	if _, err := doacross.New(8, doacross.WithOrder(order), doacross.WithExecutor(doacross.WavefrontDynamic)); err == nil {
		t.Fatal("WithOrder + WavefrontDynamic accepted")
	}
	lf, _, err := stencil.LowerFactor(stencil.SPE2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := doacross.NewReorderedSolver(lf, doacross.ReorderLevel, doacross.WithExecutor(doacross.Wavefront)); err == nil {
		t.Fatal("reordered solver accepted the wavefront executor")
	}
	if _, err := doacross.NewReorderedSolver(lf, doacross.ReorderLevel, doacross.WithExecutor(doacross.WavefrontDynamic)); err == nil {
		t.Fatal("reordered solver accepted the dynamic wavefront executor")
	}

	// Wavefront without Reads fails at run time with a descriptive error.
	rt, err := doacross.New(8, doacross.WithExecutor(doacross.Wavefront))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	loop, err := doacross.NewLoop(8, 8).
		Writes(func(i int) []int { return []int{i} }).
		Body(func(i int, v *doacross.Values) { v.Store(i, 1) }).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	y := make([]float64, 8)
	if _, err := rt.Run(context.Background(), loop, y); err == nil {
		t.Fatal("wavefront run without Reads accepted")
	}
}

// TestInspectReturnsStats checks the facade's Inspect surface: level count,
// width and critical path of a known decomposition, plus the cache-hit flag
// on re-inspection.
func TestInspectReturnsStats(t *testing.T) {
	l, _, err := stencil.LowerFactor(stencil.FivePoint, 1)
	if err != nil {
		t.Fatal(err)
	}
	rhs := stencil.RHS(l.N, 7)
	g := doacross.TrisolveGraph(l)
	wantLevels := len(g.ParallelismProfile())

	rt, err := doacross.New(l.N, doacross.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	solverLoop, err := doacross.NewLoop(l.N, l.N).
		Writes(func(i int) []int { return []int{i} }).
		Reads(func(i int) []int { return l.Col[l.RowPtr[i]:l.RowPtr[i+1]] }).
		Body(func(i int, v *doacross.Values) {
			s := rhs[i]
			for k := l.RowPtr[i]; k < l.RowPtr[i+1]; k++ {
				s -= l.Val[k] * v.Load(l.Col[k])
			}
			v.Store(i, s/l.Diag[i])
		}).
		Build()
	if err != nil {
		t.Fatal(err)
	}

	st, err := rt.Inspect(solverLoop)
	if err != nil {
		t.Fatal(err)
	}
	if st.Levels != wantLevels {
		t.Fatalf("Inspect levels = %d, want %d", st.Levels, wantLevels)
	}
	if st.CriticalPathLen != wantLevels {
		t.Fatalf("Inspect critical path = %d, want %d", st.CriticalPathLen, wantLevels)
	}
	if st.Iterations != l.N || st.MaxLevelWidth < 1 || st.MeanLevelWidth <= 0 {
		t.Fatalf("implausible stats: %+v", st)
	}
	if st.CacheHit {
		t.Fatal("first inspection reported a cache hit")
	}
	if st2, err := rt.Inspect(solverLoop); err != nil || !st2.CacheHit {
		t.Fatalf("second inspection missed the cache (err=%v)", err)
	}
}
