// Tests of the declared-access sanitizer (WithAccessCheck): it must catch a
// deliberately misdeclared access pattern under every executor, attribute the
// failure to the exact iteration and element, and report nothing on the
// correct loop shapes the rest of the suite exercises.
package doacross_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"doacross"
	"doacross/internal/stencil"
	"doacross/internal/testloop"
)

// allExecutors is every execution strategy the sanitizer wraps.
var allExecutors = []struct {
	name string
	kind doacross.ExecutorKind
}{
	{"doacross", doacross.Doacross},
	{"wavefront", doacross.Wavefront},
	{"wavefront-dynamic", doacross.WavefrontDynamic},
	{"auto", doacross.Auto},
}

// checkedChainLoop builds the dependency chain y[i] = y[i-1] + 1 over data length
// dataLen (>= n+1), with full Writes/Reads declarations so every executor can
// run it. misdeclare, when non-nil, rewires the body of one iteration to
// perform an undeclared access.
func checkedChainLoop(n, dataLen int, misdeclare func(i int, v *doacross.Values) bool) *doacross.Loop {
	return &doacross.Loop{
		N:      n,
		Data:   dataLen,
		Writes: func(i int) []int { return []int{i} },
		Reads: func(i int) []int {
			if i == 0 {
				return nil
			}
			return []int{i - 1}
		},
		Body: func(i int, v *doacross.Values) {
			if misdeclare != nil && misdeclare(i, v) {
				return
			}
			if i == 0 {
				v.Store(0, 1)
				return
			}
			v.Store(i, v.Load(i-1)+1)
		},
	}
}

// TestAccessCheckCatchesMisdeclaredWrite drives a loop whose iteration 7
// declares element 7 but stores element n through every executor: the run
// must fail with an AccessError naming iteration 7, element n and Store, and
// the diagnostic string must carry both numbers.
func TestAccessCheckCatchesMisdeclaredWrite(t *testing.T) {
	const n, bad = 16, 7
	l := checkedChainLoop(n, n+1, func(i int, v *doacross.Values) bool {
		if i != bad {
			return false
		}
		v.Store(n, 1) // declared write target is element 7
		return true
	})
	for _, ex := range allExecutors {
		t.Run(ex.name, func(t *testing.T) {
			rt, err := doacross.New(n+1,
				doacross.WithWorkers(4),
				doacross.WithExecutor(ex.kind),
				doacross.WithAccessCheck(true))
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			y := make([]float64, n+1)
			_, err = rt.Run(context.Background(), l, y)
			var ae *doacross.AccessError
			if !errors.As(err, &ae) {
				t.Fatalf("misdeclared write ran with err = %v, want *AccessError", err)
			}
			if ae.Iteration != bad || ae.Element != n || ae.Op != doacross.AccessWrite {
				t.Fatalf("AccessError = %+v, want iteration %d, element %d, Store", ae, bad, n)
			}
			msg := err.Error()
			if !strings.Contains(msg, fmt.Sprint(bad)) || !strings.Contains(msg, fmt.Sprint(n)) {
				t.Fatalf("diagnostic %q does not name the iteration and the element", msg)
			}
		})
	}
}

// TestAccessCheckCatchesUndeclaredRead drives a loop whose iteration 5 Loads
// an element outside its declared Reads — the exact under-declaration that
// makes a wavefront schedule unsound — through every executor.
func TestAccessCheckCatchesUndeclaredRead(t *testing.T) {
	const n, bad = 16, 5
	l := checkedChainLoop(n, n+1, func(i int, v *doacross.Values) bool {
		if i != bad {
			return false
		}
		v.Store(bad, v.Load(0)) // declared read is element 4
		return true
	})
	for _, ex := range allExecutors {
		t.Run(ex.name, func(t *testing.T) {
			rt, err := doacross.New(n+1,
				doacross.WithWorkers(4),
				doacross.WithExecutor(ex.kind),
				doacross.WithAccessCheck(true))
			if err != nil {
				t.Fatal(err)
			}
			defer rt.Close()
			_, err = rt.Run(context.Background(), l, make([]float64, n+1))
			var ae *doacross.AccessError
			if !errors.As(err, &ae) {
				t.Fatalf("undeclared read ran with err = %v, want *AccessError", err)
			}
			if ae.Iteration != bad || ae.Element != 0 || ae.Op != doacross.AccessRead {
				t.Fatalf("AccessError = %+v, want iteration %d, element 0, Load", ae, bad)
			}
		})
	}
}

// TestAccessCheckCatchesUndeclaredLoadNew: reading back another iteration's
// in-flight value with LoadNew skips the dependency check, so the sanitizer
// requires the element to be one of the iteration's own write targets.
func TestAccessCheckCatchesUndeclaredLoadNew(t *testing.T) {
	const n, bad = 16, 9
	l := checkedChainLoop(n, n+1, func(i int, v *doacross.Values) bool {
		if i != bad {
			return false
		}
		v.Store(bad, v.LoadNew(0))
		return true
	})
	rt, err := doacross.New(n+1, doacross.WithWorkers(4), doacross.WithAccessCheck(true))
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	_, err = rt.Run(context.Background(), l, make([]float64, n+1))
	var ae *doacross.AccessError
	if !errors.As(err, &ae) {
		t.Fatalf("undeclared LoadNew ran with err = %v, want *AccessError", err)
	}
	if ae.Iteration != bad || ae.Element != 0 || ae.Op != doacross.AccessReadNew {
		t.Fatalf("AccessError = %+v, want iteration %d, element 0, LoadNew", ae, bad)
	}
}

// randomDeclaredLoop builds a random Figure 1 loop (y[a(i)] = 2*y[b(i)] + i,
// distinct write targets, arbitrary read sources) with full Writes/Reads
// declarations, plus its initial data.
func randomDeclaredLoop(rng *rand.Rand, n int) (*doacross.Loop, []float64) {
	dataLen := 2 * n
	a := rng.Perm(dataLen)[:n]
	b := make([]int, n)
	for i := range b {
		b[i] = rng.Intn(dataLen)
	}
	y := make([]float64, dataLen)
	for i := range y {
		y[i] = rng.NormFloat64()
	}
	return &doacross.Loop{
		N:      n,
		Data:   dataLen,
		Writes: func(i int) []int { return a[i : i+1] },
		Reads:  func(i int) []int { return b[i : i+1] },
		Body: func(i int, v *doacross.Values) {
			v.Store(a[i], 2*v.Load(b[i])+float64(i))
		},
	}, y
}

// TestAccessCheckNoFalsePositivesRandomLoops is the sanitizer's soundness
// property on random dependency DAGs: every correctly declared loop must run
// to completion under every executor with the check on, producing the
// sequential result.
func TestAccessCheckNoFalsePositivesRandomLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		l, y := randomDeclaredLoop(rng, 120)
		seq := append([]float64(nil), y...)
		if err := doacross.RunSequential(l, seq); err != nil {
			t.Fatal(err)
		}
		for _, ex := range allExecutors {
			rt, err := doacross.New(l.Data,
				doacross.WithWorkers(4),
				doacross.WithExecutor(ex.kind),
				doacross.WithAccessCheck(true))
			if err != nil {
				t.Fatal(err)
			}
			par := append([]float64(nil), y...)
			if _, err := rt.Run(context.Background(), l, par); err != nil {
				t.Fatalf("trial %d %s: false positive: %v", trial, ex.name, err)
			}
			for e := range seq {
				if seq[e] != par[e] {
					t.Fatalf("trial %d %s: element %d: %v != %v", trial, ex.name, e, par[e], seq[e])
				}
			}
			rt.Close()
		}
	}
}

// TestAccessCheckNoFalsePositivesTrisolve runs the checked runtime over the
// paper's triangular substitutions — the production loop shape — under every
// executor, and through a checked Solver.
func TestAccessCheckNoFalsePositivesTrisolve(t *testing.T) {
	lf, _, err := stencil.LowerFactor(stencil.SPE2, 1)
	if err != nil {
		t.Fatal(err)
	}
	rhs := stencil.RHS(lf.N, 3)
	want := doacross.SolveSequential(lf, rhs)

	for _, ex := range allExecutors {
		y, _, err := doacross.SolveTriangular(doacross.SolverDoacross, lf, rhs,
			doacross.WithWorkers(4),
			doacross.WithExecutor(ex.kind),
			doacross.WithAccessCheck(true))
		if err != nil {
			t.Fatalf("%s: false positive on trisolve: %v", ex.name, err)
		}
		for i := range want {
			if y[i] != want[i] {
				t.Fatalf("%s: element %d: %v != %v", ex.name, i, y[i], want[i])
			}
		}
	}

	s, err := doacross.NewSolver(lf, doacross.WithWorkers(4), doacross.WithAccessCheck(true))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	y, _, err := s.Solve(rhs, make([]float64, lf.N))
	if err != nil {
		t.Fatalf("checked solver: false positive: %v", err)
	}
	for i := range want {
		if y[i] != want[i] {
			t.Fatalf("checked solver: element %d: %v != %v", i, y[i], want[i])
		}
	}
}

// TestAccessCheckNoFalsePositivesStencilLoops runs the generated test loops
// (the paper's synthetic workload across dependence distances) checked.
func TestAccessCheckNoFalsePositivesStencilLoops(t *testing.T) {
	for _, L := range []int{1, 3, 8} {
		c := testloop.Config{N: 300, M: 3, L: L}
		l := c.Loop()
		seq := c.InitialData()
		if err := doacross.RunSequential(l, seq); err != nil {
			t.Fatal(err)
		}
		for _, ex := range allExecutors {
			rt, err := doacross.New(l.Data,
				doacross.WithWorkers(4),
				doacross.WithExecutor(ex.kind),
				doacross.WithAccessCheck(true))
			if err != nil {
				t.Fatal(err)
			}
			par := c.InitialData()
			if _, err := rt.Run(context.Background(), l, par); err != nil {
				t.Fatalf("L=%d %s: false positive: %v", L, ex.name, err)
			}
			for e := range seq {
				if seq[e] != par[e] {
					t.Fatalf("L=%d %s: element %d: %v != %v", L, ex.name, e, par[e], seq[e])
				}
			}
			rt.Close()
		}
	}
}

// BenchmarkAccessCheck measures the sanitizer's cost in the BenchmarkRunReuse
// shape (one runtime, repeated runs of one loop): "off" is the production
// configuration whose only cost is a nil test per accessor, "on" the checked
// one. Compare "off" against BenchmarkRunReuse to confirm the zero-overhead
// claim.
func BenchmarkAccessCheck(b *testing.B) {
	rng := rand.New(rand.NewSource(43))
	l, y := randomDeclaredLoop(rng, 2000)
	for _, mode := range []struct {
		name string
		on   bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			rt, err := doacross.New(l.Data,
				doacross.WithWorkers(4),
				doacross.WithAccessCheck(mode.on))
			if err != nil {
				b.Fatal(err)
			}
			defer rt.Close()
			buf := make([]float64, len(y))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				copy(buf, y)
				if _, err := rt.Run(context.Background(), l, buf); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
